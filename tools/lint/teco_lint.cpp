// teco-lint: determinism & shard-safety static analysis for the TECO tree.
//
// The sharded-engine refactor (ROADMAP) requires that a sharded run replay
// bit-identically against the single-queue engine — the sim::EventQueue
// (time,seq) FIFO contract. That promise dies quietly whenever event order,
// trace output, or checker state is derived from something nondeterministic:
// unordered-container iteration order, wall-clock time, unseeded randomness,
// pointer values used as keys, or order-sensitive floating-point reduction.
// It dies just as quietly when a queue lambda smuggles a reference to
// mutable state onto a shard that does not own it. TSan and teco::mc catch
// the *consequences* at runtime; this tool rejects the *sources* at lint
// time.
//
// Like examples/hb_lint.cpp, this is a deliberately token/decl-level
// analyzer, not a libclang plugin: it tokenizes the sources (comments and
// string literals stripped, #else/#elif preprocessor branches skipped so a
// class defined twice under an #ifdef is seen once), tracks
// container/float declarations per file plus its directly #include'd
// project headers, and pattern-matches the hazards below. On top of that
// it runs a two-pass whole-src analysis: pass A builds a persistent symbol
// table of every class — fields (trailing-underscore members), methods,
// shard annotations (TECO_CAPABILITY / core::ShardCapability member /
// TECO_SHARD_AFFINE fields), TECO_QUEUE_CONTEXT markers, CausalSink bases
// — merging out-of-line method definitions into their class; pass B runs
// the rules with that table in view. That buys zero build-time
// dependencies and keeps every rule ~a screen of code, at the cost of
// being name-based: classes are keyed by unqualified name (two classes
// with the same name in different namespaces merge — keep type names
// unique), and aliasing through locals is invisible. The rules are tuned
// so the committed tree is clean (see docs/STATIC_ANALYSIS.md for the
// catalogue and the rationale behind every suppression).
//
// Rules
//   unordered-iter  range-for over an unordered_{map,set} whose body lets
//                   the iteration order escape (any non-commutative call,
//                   stream output, container append). Pure commutative
//                   integer accumulation (size/count/min/max/+= on an
//                   integral) is allowed.
//   wallclock       std::chrono::{system,steady,high_resolution}_clock,
//                   rand/srand/random_device/time(nullptr) outside the
//                   seeded sim::Rng.
//   ptr-order       pointer values used as ordering or hash keys:
//                   {map,set,unordered_*}<T*,...>, std::hash<T*>,
//                   reinterpret_cast<uintptr_t>.
//   fp-reduce       float/double accumulation whose order is not pinned:
//                   += on a floating accumulator inside unordered-container
//                   iteration, or inside a loop tagged `// teco-lint: reduce`.
//   queue-capture   a lambda passed to schedule_at/schedule_after captures
//                   `this` or a reference to a class with mutable
//                   (trailing-underscore) fields, and either the class has
//                   no shard annotation or neither the lambda body nor the
//                   enclosing method establishes the shard token
//                   (assert_held / TECO_REQUIRES — constructors never
//                   establish it). Default captures ([&]/[=]) are always
//                   flagged: they hide what escapes onto the queue.
//   shard-coverage  a class whose fields are mutated from inside a queue
//                   lambda (or that implements sim::CausalSink, i.e. is
//                   mutated from inside queue dispatch) carries no shard
//                   annotation.
//   cross-shard     a shard-affine class is reachable — over owning fields
//                   and lambda-touch edges — from more than one
//                   TECO_QUEUE_CONTEXT class without passing through an
//                   event-channel boundary (cxl::EventChannel,
//                   sim::EventQueue, core::ShardCapability, CausalSink).
//                   `--ownership-map[=PREFIX]` emits the underlying graph
//                   as DOT (+ JSON with =PREFIX).
//
// Suppressions: `// teco-lint: allow(rule[,rule...])` on the finding's line
// or the line above. Suppressions are counted and reported; CI pins the
// total via --max-suppressions so new ones are reviewed, not accumulated.
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 suppression budget
// exceeded or usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule catalogue.

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* hint;
};

constexpr RuleInfo kRules[] = {
    {"unordered-iter",
     "iteration order of an unordered container escapes into event "
     "scheduling, trace output, or checker state",
     "iterate sorted keys (collect + std::sort) or switch to std::map/vector"},
    {"wallclock",
     "wall-clock time or unseeded randomness on a simulation-visible path",
     "thread sim::Time through, or draw from the seeded sim::Rng"},
    {"ptr-order",
     "pointer value used as an ordering or hash key (address-dependent, "
     "varies run to run under ASLR)",
     "key on a stable id (index, address, name) instead of the pointer"},
    {"fp-reduce",
     "floating-point accumulation whose summation order is not pinned",
     "fix the iteration order (sorted keys) or use a pairwise/Kahan "
     "reduction with a documented order contract"},
    {"queue-capture",
     "a lambda scheduled onto an event queue captures mutable state "
     "without an established shard token",
     "annotate the class (core::ShardCapability member, TECO_SHARD_AFFINE "
     "fields) and assert_held() the token in the lambda or give the "
     "enclosing method TECO_REQUIRES"},
    {"shard-coverage",
     "state mutated from inside a queue lambda (or queue dispatch) by a "
     "class that carries no shard annotation",
     "add a core::ShardCapability member and mark the mutated fields "
     "TECO_SHARD_AFFINE(shard_)"},
    {"cross-shard",
     "shard-affine class reachable from more than one queue context "
     "without an event-channel boundary",
     "route cross-shard access through cxl::event_channel or split the "
     "ownership so each context owns its own instance"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return true;
  return false;
}

std::string valid_rules_list() {
  std::string out;
  for (const RuleInfo& r : kRules) {
    if (!out.empty()) out += ", ";
    out += r.id;
  }
  return out;
}

const RuleInfo& rule_info(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return r;
  std::cerr << "teco-lint: internal error: unknown rule " << id << "\n";
  std::exit(2);
}

// ---------------------------------------------------------------------------
// Source model: raw text -> stripped code + lint directives.

struct Token {
  std::string text;
  int line = 0;
};

// One method body (or out-of-line definition) span, for resolving what
// encloses a lambda: which class `this` is, and the parameter list that
// reference captures resolve against.
struct Scope {
  std::string cls;
  std::string method;
  std::size_t begin = 0, end = 0;                // body token span [begin,end)
  std::size_t params_begin = 0, params_end = 0;  // param token span
};

struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  // line -> rules allowed on that line (from `teco-lint: allow(...)`).
  std::map<int, std::set<std::string>> allows;
  std::set<int> reduce_tags;          // lines carrying `teco-lint: reduce`
  std::vector<std::string> includes;  // project-relative #include "..." paths
  // Names declared in THIS file.
  std::set<std::string> unordered_vars;
  std::set<std::string> ordered_vars;  // same name declared as ordered
  std::set<std::string> float_vars;
  std::set<std::string> unordered_types;  // aliases of unordered containers
  std::vector<Scope> scopes;              // method bodies (pass A)
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string detail;  // appended to the rule summary
  bool suppressed = false;
};

// Parse a `teco-lint:` directive out of one comment's text.
void parse_directive(const std::string& comment, int line, SourceFile& sf) {
  const std::size_t at = comment.find("teco-lint:");
  if (at == std::string::npos) return;
  std::string rest = comment.substr(at + 10);
  if (rest.find("reduce") != std::string::npos &&
      rest.find("allow") == std::string::npos) {
    sf.reduce_tags.insert(line);
    return;
  }
  const std::size_t open = rest.find("allow(");
  if (open == std::string::npos) return;
  const std::size_t close = rest.find(')', open);
  if (close == std::string::npos) return;
  std::string list = rest.substr(open + 6, close - open - 6);
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    id.erase(std::remove_if(id.begin(), id.end(),
                            [](unsigned char c) { return std::isspace(c); }),
             id.end());
    if (id.empty()) continue;
    if (!known_rule(id) && id != "all") {
      std::cerr << sf.path << ":" << line
                << ": teco-lint: unknown rule in allow(): " << id
                << " (valid: " << valid_rules_list() << ")\n";
      std::exit(2);
    }
    sf.allows[line].insert(id);
  }
}

// Strip comments and string/char literals, recording directives. Keeps the
// newline structure so token line numbers match the original file.
std::string strip(const std::string& raw, SourceFile& sf) {
  std::string out;
  out.reserve(raw.size());
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  while (i < n) {
    const char c = raw[i];
    if (c == '\n') {
      out += '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      std::string comment;
      while (i < n && raw[i] != '\n') comment += raw[i++];
      parse_directive(comment, line, sf);
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      std::string comment;
      const int start = line;
      i += 2;
      while (i + 1 < n && !(raw[i] == '*' && raw[i + 1] == '/')) {
        if (raw[i] == '\n') {
          out += '\n';
          ++line;
        }
        comment += raw[i++];
      }
      i = i + 1 < n ? i + 2 : n;
      parse_directive(comment, start, sf);
    } else if (c == '"') {
      // String literal (raw strings handled crudely: R"( ... )").
      const bool is_raw = i > 0 && raw[i - 1] == 'R';
      out += '"';
      ++i;
      if (is_raw) {
        std::size_t delim_end = raw.find('(', i);
        if (delim_end == std::string::npos) break;
        const std::string close_mark =
            ")" + raw.substr(i, delim_end - i) + "\"";
        const std::size_t end = raw.find(close_mark, delim_end);
        for (std::size_t j = i; j < std::min(end, n); ++j)
          if (raw[j] == '\n') {
            out += '\n';
            ++line;
          }
        i = end == std::string::npos ? n : end + close_mark.size();
      } else {
        while (i < n && raw[i] != '"') {
          if (raw[i] == '\\') ++i;
          if (i < n && raw[i] == '\n') ++line;
          ++i;
        }
        ++i;
      }
      out += '"';
    } else if (c == '\'') {
      out += '\'';
      ++i;
      while (i < n && raw[i] != '\'') {
        if (raw[i] == '\\') ++i;
        ++i;
      }
      ++i;
      out += '\'';
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// First alphabetic word of a preprocessor directive line ("#  ifdef X" ->
// "ifdef").
std::string directive_word(const std::string& dir) {
  std::size_t p = 1;
  while (p < dir.size() &&
         std::isspace(static_cast<unsigned char>(dir[p])) != 0)
    ++p;
  std::size_t q = p;
  while (q < dir.size() &&
         std::isalpha(static_cast<unsigned char>(dir[q])) != 0)
    ++q;
  return dir.substr(p, q - p);
}

void tokenize(const std::string& code, SourceFile& sf) {
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
    } else if (c == '#') {
      // Preprocessor line: capture #include "..." targets. An #else/#elif
      // opens a branch we must NOT tokenize — the first branch was already
      // kept, and doubled declarations (a class head defined once per
      // branch) would corrupt brace spans — so skip to the matching
      // #endif, counting newlines to preserve line numbers.
      std::size_t end = code.find('\n', i);
      if (end == std::string::npos) end = n;
      const std::string dir = code.substr(i, end - i);
      const std::string word = directive_word(dir);
      if (word == "else" || word == "elif") {
        int depth = 1;
        i = end;
        while (i < n && depth > 0) {
          if (code[i] == '\n') {
            ++line;
            ++i;
            continue;
          }
          if (code[i] == '#') {
            std::size_t e2 = code.find('\n', i);
            if (e2 == std::string::npos) e2 = n;
            const std::string w2 = directive_word(code.substr(i, e2 - i));
            if (w2 == "if" || w2 == "ifdef" || w2 == "ifndef") ++depth;
            else if (w2 == "endif") --depth;
            i = e2;
            continue;
          }
          ++i;
        }
        continue;
      }
      const std::size_t inc = dir.find("include");
      if (inc != std::string::npos) {
        const std::size_t q1 = dir.find('"', inc);
        const std::size_t q2 =
            q1 == std::string::npos ? q1 : dir.find('"', q1 + 1);
        if (q2 != std::string::npos)
          sf.includes.push_back(dir.substr(q1 + 1, q2 - q1 - 1));
      }
      i = end;
    } else if (ident_char(c) && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      std::size_t j = i;
      while (j < n && ident_char(code[j])) ++j;
      sf.tokens.push_back({code.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(code[j]) || code[j] == '.')) ++j;
      sf.tokens.push_back({code.substr(i, j - i), line});
      i = j;
    } else {
      // Multi-char operators the rules care about; everything else 1 char.
      static const char* two[] = {"+=", "-=", "*=", "/=", "++", "--",
                                  "<<", ">>", "::", "->", "==", "!="};
      std::string tok(1, c);
      for (const char* op : two) {
        if (i + 1 < n && code[i] == op[0] && code[i + 1] == op[1]) {
          tok = op;
          break;
        }
      }
      sf.tokens.push_back({tok, line});
      i += tok.size();
    }
  }
}

// ---------------------------------------------------------------------------
// Declaration tracking (container/float names, for the determinism rules).

const std::set<std::string>& builtin_unordered() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& builtin_ordered() {
  static const std::set<std::string> kSet = {"map", "set", "vector", "array",
                                             "deque", "multimap", "multiset"};
  return kSet;
}

// Given tokens[i] == "<", return the index just past the matching ">".
std::size_t skip_template(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    else if (t[i].text == ">") {
      if (--depth == 0) return i + 1;
    } else if (t[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t[i].text == ";" || t[i].text == "{") {
      return i;  // not a template after all (less-than expression)
    }
  }
  return i;
}

void collect_decls(SourceFile& sf) {
  const auto& t = sf.tokens;
  // `using Alias = ... unordered_map<...> ...;`
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].text == "using" && t[i + 2].text == "=") {
      for (std::size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
        if (builtin_unordered().count(t[j].text) != 0 ||
            sf.unordered_types.count(t[j].text) != 0) {
          sf.unordered_types.insert(t[i + 1].text);
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    const bool is_unordered = builtin_unordered().count(tx) != 0 ||
                              sf.unordered_types.count(tx) != 0;
    const bool is_ordered = builtin_ordered().count(tx) != 0;
    if ((is_unordered || is_ordered) && i + 1 < t.size()) {
      std::size_t j = i + 1;
      if (j < t.size() && t[j].text == "<") j = skip_template(t, j);
      // Accept `Type [cv-ref] name ;|=|{|,|)` declarations — members,
      // locals, and (const-reference) function parameters alike.
      while (j < t.size() &&
             (t[j].text == "&" || t[j].text == "*" || t[j].text == "const"))
        ++j;
      if (j < t.size() && ident_char(t[j].text[0]) &&
          std::isdigit(static_cast<unsigned char>(t[j].text[0])) == 0 &&
          j + 1 < t.size() &&
          (t[j + 1].text == ";" || t[j + 1].text == "=" ||
           t[j + 1].text == "{" || t[j + 1].text == "," ||
           t[j + 1].text == ")")) {
        (is_unordered ? sf.unordered_vars : sf.ordered_vars)
            .insert(t[j].text);
      }
    }
    if ((tx == "float" || tx == "double") && i + 1 < t.size()) {
      const std::string& name = t[i + 1].text;
      if (ident_char(name[0]) &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0 &&
          i + 2 < t.size() &&
          (t[i + 2].text == ";" || t[i + 2].text == "=" ||
           t[i + 2].text == "{" || t[i + 2].text == ",")) {
        sf.float_vars.insert(name);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass A: the whole-src symbol table.

struct FieldInfo {
  std::string name;
  std::vector<std::string> type;  // declaration tokens left of the name
  bool owning = true;             // false when the decl contains * or &
  int line = 0;
};

struct MethodInfo {
  std::string name;
  bool seen = false;
  bool is_const = false;
  bool is_ctor = false;
  bool has_requires = false;     // TECO_REQUIRES / TECO_ASSERT_CAPABILITY
  bool has_assert_held = false;  // body calls assert_held
};

struct ClassInfo {
  std::string name;
  std::string path;  // file of the definition
  int line = 0;
  bool affine = false;         // carries a shard annotation
  bool queue_context = false;  // TECO_QUEUE_CONTEXT marker
  bool causal_sink = false;    // derives from CausalSink
  std::vector<FieldInfo> fields;  // trailing-underscore members (no shard_)
  std::set<std::string> field_names;
  std::map<std::string, MethodInfo> methods;
  // Names of types declared inside this class. A field of nested type must
  // NOT resolve to an unrelated global class of the same name (e.g. a
  // private `struct Session` vs core::Session).
  std::set<std::string> nested;
  bool has_mutable_fields() const { return !fields.empty(); }
};

using ClassTable = std::map<std::string, ClassInfo>;

const std::set<std::string>& guard_macros() {
  static const std::set<std::string> kSet = {"TECO_SHARD_AFFINE",
                                            "TECO_GUARDED_BY",
                                            "TECO_PT_GUARDED_BY"};
  return kSet;
}

// Classes that terminate cross-shard reachability: handing state to one of
// these IS the sanctioned way to cross shards (the event channel), or the
// class is by construction owned-per-shard plumbing.
const std::set<std::string>& boundary_classes() {
  static const std::set<std::string> kSet = {"EventChannel", "EventQueue",
                                             "ShardCapability", "CausalSink"};
  return kSet;
}

// Given tokens[open] in {(,[,{}, return the index just past its closer.
std::size_t skip_group(const std::vector<Token>& t, std::size_t open,
                       std::size_t limit) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int d = 0;
  for (std::size_t j = open; j < limit; ++j) {
    if (t[j].text == o) ++d;
    else if (t[j].text == c && --d == 0) return j + 1;
  }
  return limit;
}

// From just past a parameter list's ")", walk the specifier tail to the
// body "{" or declaration-ending ";". Returns that index, or `limit` when
// the token stream is not a function declarator after all (e.g. a call
// expression inside an expression). Fills is_const/has_requires.
std::size_t find_body(const std::vector<Token>& t, std::size_t p,
                      std::size_t limit, MethodInfo& m) {
  while (p < limit) {
    const std::string& tx = t[p].text;
    if (tx == "{" || tx == ";") return p;
    if (tx == "const") {
      m.is_const = true;
      ++p;
    } else if (tx == "override" || tx == "final" || tx == "mutable") {
      ++p;
    } else if (tx == "noexcept") {
      ++p;
      if (p < limit && t[p].text == "(") p = skip_group(t, p, limit);
    } else if (tx == "TECO_REQUIRES" || tx == "TECO_ASSERT_CAPABILITY" ||
               tx == "TECO_ACQUIRE" || tx == "TECO_RELEASE") {
      m.has_requires = true;
      ++p;
      if (p < limit && t[p].text == "(") p = skip_group(t, p, limit);
    } else if (tx == "->") {  // trailing return type
      ++p;
      while (p < limit && t[p].text != "{" && t[p].text != ";") ++p;
    } else if (tx == "=") {  // = default / = delete / = 0
      while (p < limit && t[p].text != ";") ++p;
      return p;
    } else if (tx == ":") {  // ctor-init list: items `name(...)`/`name{...}`
      ++p;
      while (p < limit) {
        while (p < limit && t[p].text != "(" && t[p].text != "{" &&
               t[p].text != ";")
          ++p;
        if (p >= limit || t[p].text == ";") return limit;
        p = skip_group(t, p, limit);
        if (p < limit && t[p].text == ",") {
          ++p;
          continue;
        }
        break;
      }
    } else {
      return limit;  // unexpected token: not a function definition
    }
  }
  return limit;
}

void merge_method(ClassInfo& C, const MethodInfo& m) {
  MethodInfo& dst = C.methods[m.name];
  if (!dst.seen) {
    dst = m;
    dst.seen = true;
    return;
  }
  // Overload sets collapse: const only if every overload is const
  // (conservative for the mutation rule), token facts accumulate.
  dst.is_const = dst.is_const && m.is_const;
  dst.is_ctor = dst.is_ctor || m.is_ctor;
  dst.has_requires = dst.has_requires || m.has_requires;
  dst.has_assert_held = dst.has_assert_held || m.has_assert_held;
}

// Parse a class head at t[i] ("class"/"struct"). On success fills the name
// and head facts and sets body_open to the "{" index.
bool parse_class_head(const std::vector<Token>& t, std::size_t i,
                      std::string& name, bool& is_capability,
                      bool& causal_sink, std::size_t& body_open) {
  if (i > 0 && t[i - 1].text == "enum") return false;
  name.clear();
  is_capability = false;
  causal_sink = false;
  std::size_t j = i + 1;
  for (; j < t.size(); ++j) {
    const std::string& tx = t[j].text;
    if (tx == "{" || tx == ":" || tx == ";") break;
    if (tx == "final") continue;
    if (tx == "alignas" || tx.rfind("TECO_", 0) == 0) {
      if (tx.rfind("TECO_CAPABILITY", 0) == 0) is_capability = true;
      if (j + 1 < t.size() && t[j + 1].text == "(")
        j = skip_group(t, j + 1, t.size()) - 1;
      continue;
    }
    if (ident_char(tx[0]) &&
        std::isdigit(static_cast<unsigned char>(tx[0])) == 0) {
      name = tx;
      continue;
    }
    return false;  // template parameter list, expression, etc.
  }
  if (j >= t.size() || name.empty() || t[j].text == ";") return false;
  if (t[j].text == ":") {
    for (; j < t.size() && t[j].text != "{"; ++j)
      if (t[j].text.find("CausalSink") != std::string::npos)
        causal_sink = true;
  }
  if (j >= t.size() || t[j].text != "{") return false;
  body_open = j;
  return true;
}

// Walk one class body: fields, methods (inline bodies become scopes),
// TECO_QUEUE_CONTEXT markers, the shard capability member. Nested types
// are skipped wholesale — their members belong to them, not to C.
void parse_class_body(const std::vector<Token>& t, std::size_t open,
                      std::size_t close, ClassInfo& C,
                      std::vector<Scope>& scopes) {
  std::size_t p = open + 1;
  while (p < close) {
    const std::string& tx = t[p].text;
    if (tx == "public" || tx == "private" || tx == "protected") {
      p += (p + 1 < close && t[p + 1].text == ":") ? 2 : 1;
      continue;
    }
    if (tx == "using" || tx == "typedef" || tx == "friend" ||
        tx == "static_assert") {
      while (p < close && t[p].text != ";") {
        if (t[p].text == "{" || t[p].text == "(")
          p = skip_group(t, p, close);
        else
          ++p;
      }
      ++p;
      continue;
    }
    if (tx == "TECO_QUEUE_CONTEXT") {
      C.queue_context = true;
      ++p;
      if (p < close && t[p].text == "(") p = skip_group(t, p, close);
      if (p < close && t[p].text == ";") ++p;
      continue;
    }
    if (tx == "class" || tx == "struct" || tx == "enum" || tx == "union") {
      std::size_t q = p + 1;
      while (q < close && t[q].text != "{" && t[q].text != ";" &&
             t[q].text != ":") {
        const std::string& qt = t[q].text;
        if (ident_char(qt[0]) &&
            std::isdigit(static_cast<unsigned char>(qt[0])) == 0 &&
            qt != "class" && qt != "final")
          C.nested.insert(qt);
        ++q;
      }
      while (q < close && t[q].text != "{" && t[q].text != ";") ++q;
      if (q < close && t[q].text == "{") q = skip_group(t, q, close);
      while (q < close && t[q].text != ";") ++q;
      p = q + 1;
      continue;
    }
    if (tx == "template") {
      ++p;
      if (p < close && t[p].text == "<") {
        int d = 0;
        for (; p < close; ++p) {
          if (t[p].text == "<") ++d;
          else if (t[p].text == ">") {
            if (--d == 0) {
              ++p;
              break;
            }
          } else if (t[p].text == ">>") {
            d -= 2;
            if (d <= 0) {
              ++p;
              break;
            }
          }
        }
      }
      continue;
    }
    if (tx == "~" || tx == "operator") {
      // Destructor / operator overload: skip to the parameter list, then
      // past the body or the declaration-ending ';'.
      MethodInfo m;
      m.name = tx == "~" ? "~" + C.name : "operator";
      std::size_t q = p + 1;
      while (q < close && t[q].text != "(") ++q;
      if (q >= close) {
        p = q;
        continue;
      }
      std::size_t past = skip_group(t, q, close);
      std::size_t after = find_body(t, past, close, m);
      if (after < close && t[after].text == "{")
        p = skip_group(t, after, close);
      else
        p = after < close ? after + 1 : past;
      continue;
    }
    // Method: identifier directly followed by "(" (guard macros excluded).
    if (ident_char(tx[0]) &&
        std::isdigit(static_cast<unsigned char>(tx[0])) == 0 &&
        p + 1 < close && t[p + 1].text == "(" &&
        guard_macros().count(tx) == 0 && tx.rfind("TECO_", 0) != 0 &&
        tx != "alignas" && tx != "decltype" && tx != "if" && tx != "for" &&
        tx != "while" && tx != "switch" && tx != "return" && tx != "sizeof" &&
        tx != "assert") {
      MethodInfo m;
      m.name = tx;
      m.is_ctor = tx == C.name;
      const std::size_t params_open = p + 1;
      const std::size_t past = skip_group(t, params_open, close);
      const std::size_t after = find_body(t, past, close, m);
      if (after >= close) {
        p = past;
        continue;
      }
      if (t[after].text == "{") {
        const std::size_t body_past = skip_group(t, after, close);
        for (std::size_t b = after + 1; b + 1 < body_past; ++b)
          if (t[b].text == "assert_held") m.has_assert_held = true;
        scopes.push_back({C.name, m.name, after + 1, body_past - 1,
                          params_open + 1, past - 1});
        merge_method(C, m);
        p = body_past;
      } else {
        merge_method(C, m);
        p = after + 1;
      }
      continue;
    }
    // Field: trailing-underscore identifier in declaration position.
    if (ident_char(tx[0]) &&
        std::isdigit(static_cast<unsigned char>(tx[0])) == 0 &&
        tx.size() > 1 && tx.back() == '_' && p + 1 < close) {
      const std::string& nx = t[p + 1].text;
      if (nx == ";" || nx == "=" || nx == "{" || nx == "[" ||
          guard_macros().count(nx) != 0) {
        std::vector<std::string> type;
        for (std::size_t b = p; b-- > open + 1;) {
          const std::string& bt = t[b].text;
          if (bt == ";" || bt == "}" || bt == "{" || bt == ":") break;
          type.push_back(bt);
        }
        std::reverse(type.begin(), type.end());
        bool is_cap = false;
        bool owning = true;
        for (const std::string& ty : type) {
          if (ty == "ShardCapability") is_cap = true;
          if (ty == "*" || ty == "&") owning = false;
        }
        const bool guarded = guard_macros().count(nx) != 0;
        if (is_cap) {
          C.affine = true;  // owns the capability itself
        } else {
          if (guarded) C.affine = true;
          C.fields.push_back({tx, std::move(type), owning, t[p].line});
          C.field_names.insert(tx);
        }
        while (p < close && t[p].text != ";") {
          if (t[p].text == "{" || t[p].text == "(")
            p = skip_group(t, p, close);
          else
            ++p;
        }
        ++p;
        continue;
      }
    }
    ++p;
  }
}

// Pass A1: register every top-level class/struct definition in the file.
void collect_classes(SourceFile& sf, ClassTable& classes) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "class" && t[i].text != "struct") continue;
    std::string name;
    bool is_capability = false, causal_sink = false;
    std::size_t body_open = 0;
    if (!parse_class_head(t, i, name, is_capability, causal_sink, body_open))
      continue;
    const std::size_t body_past = skip_group(t, body_open, t.size());
    ClassInfo& C = classes[name];
    if (C.name.empty()) {
      C.name = name;
      C.path = sf.path;
      C.line = t[i].line;
    }
    C.affine = C.affine || is_capability;
    C.causal_sink = C.causal_sink || causal_sink;
    parse_class_body(t, body_open, body_past - 1, C, sf.scopes);
    i = body_past - 1;  // nested classes stay invisible
  }
}

// Pass A2: merge out-of-line `Known::method(...)` definitions — the decl
// in the header carries TECO_REQUIRES, the body in the .cpp carries the
// assert_held fact; the class needs both.
void collect_out_of_line(SourceFile& sf, ClassTable& classes) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i + 1].text != "::") continue;
    auto ci = classes.find(t[i].text);
    if (ci == classes.end()) continue;
    std::size_t mi = i + 2;
    bool dtor = false;
    if (t[mi].text == "~") {
      dtor = true;
      ++mi;
    }
    if (mi + 1 >= t.size() || !ident_char(t[mi].text[0]) ||
        std::isdigit(static_cast<unsigned char>(t[mi].text[0])) != 0 ||
        t[mi + 1].text != "(")
      continue;
    MethodInfo m;
    m.name = (dtor ? "~" : "") + t[mi].text;
    m.is_ctor = !dtor && t[mi].text == ci->first;
    const std::size_t params_open = mi + 1;
    const std::size_t past = skip_group(t, params_open, t.size());
    const std::size_t after = find_body(t, past, t.size(), m);
    if (after >= t.size()) continue;  // a qualified call, not a definition
    if (t[after].text == "{") {
      const std::size_t body_past = skip_group(t, after, t.size());
      for (std::size_t b = after + 1; b + 1 < body_past; ++b)
        if (t[b].text == "assert_held") m.has_assert_held = true;
      sf.scopes.push_back({ci->first, m.name, after + 1, body_past - 1,
                           params_open + 1, past - 1});
    }
    merge_method(ci->second, m);
  }
}

// ---------------------------------------------------------------------------
// Rule engines.

struct Visibility {
  // Names visible to a file: its own decls plus its direct project includes.
  std::set<std::string> unordered_vars;
  std::set<std::string> ordered_vars;
  std::set<std::string> float_vars;
  std::set<std::string> unordered_types;
};

bool is_keyword_call(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if",     "for",        "while",  "switch",      "return",
      "sizeof", "catch",      "assert", "static_cast", "const_cast",
      "defined"};
  return kKw.count(s) != 0;
}

bool is_commutative_call(const std::string& s) {
  static const std::set<std::string> kOk = {"size",     "empty", "count",
                                            "contains", "max",   "min",
                                            "abs",      "fabs",  "llabs"};
  return kOk.count(s) != 0;
}

void scan_loops(const SourceFile& sf, const Visibility& vis,
                std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "for" && t[i].text != "while") continue;
    if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
    const int for_line = t[i].line;
    const bool tagged_reduce = sf.reduce_tags.count(for_line) != 0 ||
                               sf.reduce_tags.count(for_line - 1) != 0;
    // Find the matching ')' and a range-for ':' at depth 1.
    int depth = 0;
    std::size_t close = i + 1;
    std::size_t colon = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (t[j].text == ":" && depth == 1 && colon == 0) {
        colon = j;
      }
    }
    if (close <= i + 1) continue;
    // Is the range expression an unordered container?
    std::string container;
    if (t[i].text == "for" && colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (vis.unordered_vars.count(t[j].text) != 0 &&
            vis.ordered_vars.count(t[j].text) == 0) {
          container = t[j].text;
          break;
        }
        if (builtin_unordered().count(t[j].text) != 0 ||
            vis.unordered_types.count(t[j].text) != 0) {
          container = t[j].text;  // e.g. iterating a temporary
          break;
        }
      }
    }
    if (container.empty() && !tagged_reduce) continue;
    // Extract the loop body: `{...}` balanced, or one statement up to ';'.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (body_begin < t.size() && t[body_begin].text == "{") {
      int bd = 0;
      for (std::size_t j = body_begin; j < t.size(); ++j) {
        if (t[j].text == "{") ++bd;
        else if (t[j].text == "}" && --bd == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }
    // Analyze the body.
    std::string escape;  // first order-escaping construct
    std::string fp_acc;  // first floating accumulator hit by `+=`
    for (std::size_t j = body_begin; j < body_end; ++j) {
      const std::string& b = t[j].text;
      if (b == "<<" && escape.empty()) escape = "stream output";
      if (j + 1 < body_end && t[j + 1].text == "(" &&
          ident_char(b[0]) &&
          std::isdigit(static_cast<unsigned char>(b[0])) == 0 &&
          !is_keyword_call(b) && !is_commutative_call(b) && escape.empty()) {
        escape = "call to '" + b + "'";
      }
      if (j + 1 < body_end && t[j + 1].text == "+=" &&
          vis.float_vars.count(b) != 0 && fp_acc.empty()) {
        fp_acc = b;
      }
    }
    if (!container.empty() && !escape.empty()) {
      out.push_back({sf.path, for_line, "unordered-iter",
                     "'" + container + "' iterated with order-sensitive "
                     "body (" + escape + ")",
                     false});
    }
    if (!fp_acc.empty() && (!container.empty() || tagged_reduce)) {
      out.push_back({sf.path, for_line, "fp-reduce",
                     "'" + fp_acc + "' accumulated in " +
                         (container.empty()
                              ? std::string("a tagged reduce loop")
                              : "iteration over '" + container + "'"),
                     false});
    }
  }
}

void scan_wallclock(const SourceFile& sf, std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& tx = t[i].text;
    if (tx == "system_clock" || tx == "steady_clock" ||
        tx == "high_resolution_clock" || tx == "random_device") {
      out.push_back({sf.path, t[i].line, "wallclock", "'" + tx + "'", false});
    } else if ((tx == "rand" || tx == "srand") && i + 1 < t.size() &&
               t[i + 1].text == "(") {
      out.push_back(
          {sf.path, t[i].line, "wallclock", "'" + tx + "()'", false});
    } else if (tx == "time" && i + 2 < t.size() && t[i + 1].text == "(" &&
               (t[i + 2].text == "nullptr" || t[i + 2].text == "NULL" ||
                t[i + 2].text == "0")) {
      out.push_back(
          {sf.path, t[i].line, "wallclock", "'time(nullptr)'", false});
    }
  }
}

void scan_ptr_order(const SourceFile& sf, const Visibility& vis,
                    std::vector<Finding>& out) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& tx = t[i].text;
    const bool assoc = builtin_unordered().count(tx) != 0 ||
                       vis.unordered_types.count(tx) != 0 || tx == "map" ||
                       tx == "set" || tx == "multimap" || tx == "multiset" ||
                       tx == "hash";
    if (assoc && t[i + 1].text == "<") {
      // First template argument: tokens until a top-level ',' or '>'.
      int depth = 0;
      std::string last;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const std::string& b = t[j].text;
        if (b == "<") ++depth;
        else if (b == ">" || b == ">>") {
          if (b == ">" && --depth > 0) continue;
          break;
        } else if (b == "," && depth == 1) {
          break;
        } else if (b == ";" || b == "{") {
          last.clear();  // not a template
          break;
        } else {
          last = b;
        }
      }
      if (last == "*") {
        out.push_back({sf.path, t[i].line, "ptr-order",
                       "'" + tx + "' keyed on a pointer type", false});
      }
    }
    if (tx == "reinterpret_cast" && t[i + 1].text == "<") {
      for (std::size_t j = i + 2; j < t.size() && t[j].text != ">"; ++j) {
        if (t[j].text == "uintptr_t" || t[j].text == "intptr_t") {
          out.push_back({sf.path, t[i].line, "ptr-order",
                         "pointer reinterpreted as an integer id", false});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Queue-lambda rules (queue-capture, shard-coverage) + touch-edge harvest.

const std::set<std::string>& mutating_members() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
      "insert",    "emplace",      "erase",    "clear",      "resize",
      "assign",    "reset",        "swap",     "push",       "pop"};
  return kSet;
}

bool is_mutation_op(const std::string& s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "++" || s == "--";
}

// Smallest method-body span containing token index i, or nullptr.
const Scope* enclosing_scope(const std::vector<Scope>& scopes,
                             std::size_t i) {
  const Scope* best = nullptr;
  for (const Scope& s : scopes) {
    if (s.begin <= i && i < s.end &&
        (best == nullptr || s.end - s.begin < best->end - best->begin))
      best = &s;
  }
  return best;
}

// Resolve a by-reference captured name against the enclosing scope's
// parameter list: `... ClassName [const] & name ...` -> ClassName if it is
// a known class. Returns nullptr when unresolvable (locals, unknown types).
const ClassInfo* resolve_param_class(const std::vector<Token>& t,
                                     const Scope& sc, const std::string& name,
                                     const ClassTable& classes) {
  for (std::size_t j = sc.params_begin; j < sc.params_end; ++j) {
    if (t[j].text != name) continue;
    for (std::size_t b = j; b-- > sc.params_begin;) {
      const std::string& bt = t[b].text;
      if (bt == ",") break;
      auto it = classes.find(bt);
      if (it != classes.end()) return &it->second;
    }
    break;
  }
  return nullptr;
}

// Does the lambda or its enclosing method establish the shard token?
// Constructors never do: the capability idiom exempts them from guarded
// access precisely because no token is held yet.
bool token_established(bool body_asserts, const ClassInfo* E,
                       const Scope* sc) {
  if (body_asserts) return true;
  if (E == nullptr || sc == nullptr) return false;
  auto it = E->methods.find(sc->method);
  if (it == E->methods.end() || it->second.is_ctor) return false;
  return it->second.has_assert_held || it->second.has_requires;
}

// Scan one lambda body for mutations of class C's state reached via
// `this`-capture (prefix.empty()) or via a by-reference captured object
// named `prefix`. Returns the token index of the first mutation (or 0).
std::size_t find_mutation(const std::vector<Token>& t, std::size_t begin,
                          std::size_t end, const ClassInfo& C,
                          const std::string& prefix, std::string& what) {
  for (std::size_t j = begin; j < end; ++j) {
    const std::string& b = t[j].text;
    if (prefix.empty()) {
      // Field mutated: f [op] | f[...] op | f.mutator( | ++f.
      if (C.field_names.count(b) != 0) {
        std::size_t k = j + 1;
        while (k < end && t[k].text == "[") k = skip_group(t, k, end);
        if (k < end && is_mutation_op(t[k].text)) {
          what = b;
          return j;
        }
        if (k + 1 < end && (t[k].text == "." || t[k].text == "->") &&
            mutating_members().count(t[k + 1].text) != 0) {
          what = b;
          return j;
        }
        if (j > begin &&
            (t[j - 1].text == "++" || t[j - 1].text == "--")) {
          what = b;
          return j;
        }
      }
      // Bare (or this->) call to a non-const method.
      if (j + 1 < end && t[j + 1].text == "(") {
        auto it = C.methods.find(b);
        if (it != C.methods.end() && !it->second.is_const &&
            !it->second.is_ctor) {
          const bool qualified_elsewhere =
              j > begin && (t[j - 1].text == "." || t[j - 1].text == "->") &&
              !(j >= begin + 2 && t[j - 2].text == "this");
          if (!qualified_elsewhere) {
            what = b + "()";
            return j;
          }
        }
      }
    } else if (b == prefix && j + 2 < end &&
               (t[j + 1].text == "." || t[j + 1].text == "->")) {
      const std::string& mem = t[j + 2].text;
      if (C.field_names.count(mem) != 0) {
        std::size_t k = j + 3;
        while (k < end && t[k].text == "[") k = skip_group(t, k, end);
        if (k < end && is_mutation_op(t[k].text)) {
          what = prefix + "." + mem;
          return j;
        }
      }
      if (mutating_members().count(mem) != 0) {
        what = prefix + "." + mem + "()";
        return j;
      }
      auto it = C.methods.find(mem);
      if (it != C.methods.end() && !it->second.is_const &&
          !it->second.is_ctor && j + 3 < end && t[j + 3].text == "(") {
        what = prefix + "." + mem + "()";
        return j;
      }
    }
  }
  return 0;
}

// Analyze one lambda literal passed to schedule_at/schedule_after.
// `lb` indexes the "[" of the capture list.
void analyze_queue_lambda(
    const SourceFile& sf, std::size_t lb, const ClassTable& classes,
    std::vector<Finding>& out,
    std::set<std::pair<std::string, std::string>>& touches) {
  const auto& t = sf.tokens;
  const int line = t[lb].line;
  const std::size_t cap_past = skip_group(t, lb, t.size());
  if (cap_past >= t.size()) return;
  const std::size_t cap_end = cap_past - 1;  // "]"

  bool cap_this = false, cap_default = false;
  std::vector<std::string> ref_caps;
  std::size_t p = lb + 1;
  while (p < cap_end) {
    if (t[p].text == "this") {
      cap_this = true;
      ++p;
    } else if (t[p].text == "&") {
      if (p + 1 < cap_end && ident_char(t[p + 1].text[0]) &&
          t[p + 1].text != "this") {
        ref_caps.push_back(t[p + 1].text);
        p += 2;
      } else {
        cap_default = true;
        ++p;
      }
    } else if (t[p].text == "=") {
      cap_default = true;
      ++p;
    } else {
      ++p;  // by-value capture (name, *this, init-capture)
    }
    int d = 0;  // skip to the next top-level ','
    while (p < cap_end) {
      const std::string& x = t[p].text;
      if (x == "(" || x == "[" || x == "{") ++d;
      else if (x == ")" || x == "]" || x == "}") --d;
      else if (x == "," && d == 0) {
        ++p;
        break;
      }
      ++p;
    }
  }

  // Body span.
  std::size_t q = cap_past;
  if (q < t.size() && t[q].text == "(") q = skip_group(t, q, t.size());
  while (q < t.size() && t[q].text != "{" && t[q].text != ";" &&
         t[q].text != ")")
    ++q;
  if (q >= t.size() || t[q].text != "{") return;
  const std::size_t body_begin = q + 1;
  const std::size_t body_past = skip_group(t, q, t.size());
  const std::size_t body_end = body_past - 1;
  bool body_asserts = false;
  for (std::size_t b = body_begin; b < body_end; ++b)
    if (t[b].text == "assert_held") body_asserts = true;

  const Scope* sc = enclosing_scope(sf.scopes, lb);
  const ClassInfo* E = nullptr;
  if (sc != nullptr) {
    auto it = classes.find(sc->cls);
    if (it != classes.end()) E = &it->second;
  }

  if (cap_default) {
    out.push_back({sf.path, line, "queue-capture",
                   "default capture (hides what escapes onto the queue)",
                   false});
  }

  auto check_target = [&](const ClassInfo& C, const std::string& label,
                          const std::string& prefix) {
    if (E != nullptr) touches.insert({E->name, C.name});
    if (C.has_mutable_fields()) {
      if (!C.affine) {
        out.push_back({sf.path, line, "queue-capture",
                       label + " of unannotated '" + C.name +
                           "' (mutable fields, no shard capability)",
                       false});
      } else if (!token_established(body_asserts, E, sc)) {
        out.push_back({sf.path, line, "queue-capture",
                       label + " of '" + C.name +
                           "' without establishing the shard token "
                           "(assert_held / TECO_REQUIRES)",
                       false});
      }
    }
    std::string what;
    const std::size_t mut = find_mutation(t, body_begin, body_end, C, prefix,
                                          what);
    if (mut != 0 && !C.affine) {
      out.push_back({sf.path, t[mut].line, "shard-coverage",
                     "'" + what + "' of '" + C.name +
                         "' mutated inside a queue lambda",
                     false});
    }
  };

  if (cap_this && E != nullptr) check_target(*E, "'this'", "");
  for (const std::string& nm : ref_caps) {
    if (sc == nullptr) continue;
    const ClassInfo* B = resolve_param_class(t, *sc, nm, classes);
    if (B == nullptr) continue;  // unresolvable: locals, unknown types
    check_target(*B, "'&" + nm + "'", nm);
  }
}

void scan_queue_lambdas(
    const SourceFile& sf, const ClassTable& classes,
    std::vector<Finding>& out,
    std::set<std::pair<std::string, std::string>>& touches) {
  const auto& t = sf.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "schedule_at" && t[i].text != "schedule_after")
      continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t call_past = skip_group(t, i + 1, t.size());
    for (std::size_t j = i + 2; j + 1 < call_past; ++j) {
      if (t[j].text != "[") continue;
      const std::string& prev = t[j - 1].text;
      if (prev != "(" && prev != ",") continue;  // subscript, not a lambda
      analyze_queue_lambda(sf, j, classes, out, touches);
      j = skip_group(t, j, call_past) - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-shard ownership graph.

struct OwnershipGraph {
  // Adjacency over class names. `own` = by-value/unique_ptr/container
  // fields (shard ownership follows these), `uses` = pointer/reference
  // fields (non-owning, excluded from reachability), `touch` = state
  // touched from inside a queue lambda.
  std::map<std::string, std::set<std::string>> own, uses, touch;
};

OwnershipGraph build_graph(
    const ClassTable& classes,
    const std::set<std::pair<std::string, std::string>>& touches) {
  OwnershipGraph g;
  for (const auto& [name, C] : classes) {
    for (const FieldInfo& f : C.fields) {
      for (const std::string& ty : f.type) {
        if (ty == name || C.nested.count(ty) != 0) continue;
        if (classes.count(ty) == 0) continue;
        (f.owning ? g.own : g.uses)[name].insert(ty);
      }
    }
  }
  for (const auto& [from, to] : touches) {
    if (from.empty() || from == to) continue;
    if (classes.count(from) == 0 || classes.count(to) == 0) continue;
    g.touch[from].insert(to);
  }
  return g;
}

// For every queue context, the classes it reaches over own+touch edges.
// Boundary classes are reached but never expanded: handing state to the
// event channel is the sanctioned crossing.
std::map<std::string, std::set<std::string>> reach_contexts(
    const ClassTable& classes, const OwnershipGraph& g) {
  std::map<std::string, std::set<std::string>> reached_by;
  for (const auto& [root, C] : classes) {
    if (!C.queue_context) continue;
    std::set<std::string> vis{root};
    std::vector<std::string> stack{root};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      reached_by[cur].insert(root);
      if (boundary_classes().count(cur) != 0 && cur != root) continue;
      for (const auto* adj : {&g.own, &g.touch}) {
        const auto it = adj->find(cur);
        if (it == adj->end()) continue;
        for (const std::string& nx : it->second)
          if (vis.insert(nx).second) stack.push_back(nx);
      }
    }
  }
  return reached_by;
}

void scan_cross_shard(
    const ClassTable& classes,
    const std::map<std::string, std::set<std::string>>& reached_by,
    std::vector<Finding>& out) {
  for (const auto& [name, C] : classes) {
    if (C.causal_sink && !C.affine) {
      out.push_back({C.path, C.line, "shard-coverage",
                     "'" + name +
                         "' implements sim::CausalSink (mutated from queue "
                         "dispatch) but carries no shard annotation",
                     false});
    }
    if (!C.affine || C.queue_context || boundary_classes().count(name) != 0)
      continue;
    const auto it = reached_by.find(name);
    if (it == reached_by.end() || it->second.size() < 2) continue;
    std::string ctxs;
    for (const std::string& r : it->second) {
      if (!ctxs.empty()) ctxs += ", ";
      ctxs += r;
    }
    out.push_back({C.path, C.line, "cross-shard",
                   "'" + name + "' is reachable from queue contexts {" +
                       ctxs + "}",
                   false});
  }
}

// Node set for the emitted map: contexts, shard-affine classes, boundary
// classes, plus any class a context reaches that leads onward to affine
// state (e.g. an unannotated aggregate sitting between a context and its
// annotated internals). Pure leaf plumbing stays out.
std::set<std::string> map_nodes(
    const ClassTable& classes, const OwnershipGraph& g,
    const std::map<std::string, std::set<std::string>>& reached_by) {
  std::set<std::string> leads_to_affine;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, C] : classes) {
      if (leads_to_affine.count(name) != 0) continue;
      bool hit = C.affine;
      for (const auto* adj : {&g.own, &g.touch}) {
        if (hit) break;
        const auto it = adj->find(name);
        if (it == adj->end()) continue;
        for (const std::string& nx : it->second)
          if (leads_to_affine.count(nx) != 0) {
            hit = true;
            break;
          }
      }
      if (hit) {
        leads_to_affine.insert(name);
        changed = true;
      }
    }
  }
  std::set<std::string> nodes;
  for (const auto& [name, C] : classes) {
    if (C.queue_context || C.affine || boundary_classes().count(name) != 0)
      nodes.insert(name);
    else if (reached_by.count(name) != 0 &&
             leads_to_affine.count(name) != 0)
      nodes.insert(name);
  }
  return nodes;
}

std::string base_name(const std::string& path) {
  return fs::path(path).filename().string();
}

void emit_dot(std::ostream& os, const ClassTable& classes,
              const OwnershipGraph& g, const std::set<std::string>& nodes) {
  os << "digraph teco_ownership {\n"
     << "  rankdir=LR;\n"
     << "  node [fontsize=10];\n";
  for (const std::string& n : nodes) {
    const ClassInfo& C = classes.at(n);
    if (C.queue_context) {
      os << "  \"" << n << "\" [shape=box, penwidth=2, label=\"" << n
         << "\\n(queue context)\"];\n";
    } else if (boundary_classes().count(n) != 0) {
      os << "  \"" << n << "\" [shape=diamond, style=dashed, label=\"" << n
         << "\\n(boundary)\"];\n";
    } else if (C.affine) {
      os << "  \"" << n << "\" [shape=ellipse];\n";
    } else {
      os << "  \"" << n << "\" [shape=ellipse, style=dotted];\n";
    }
  }
  auto edges = [&](const std::map<std::string, std::set<std::string>>& adj,
                   const char* attrs) {
    for (const auto& [from, tos] : adj) {
      if (nodes.count(from) == 0) continue;
      for (const std::string& to : tos) {
        if (nodes.count(to) == 0) continue;
        os << "  \"" << from << "\" -> \"" << to << "\"" << attrs << ";\n";
      }
    }
  };
  edges(g.own, "");
  edges(g.uses, " [style=dashed]");
  edges(g.touch, " [style=dotted, label=\"touch\"]");
  os << "}\n";
}

void emit_json(std::ostream& os, const ClassTable& classes,
               const OwnershipGraph& g, const std::set<std::string>& nodes,
               const std::map<std::string, std::set<std::string>>&
                   reached_by) {
  os << "{\n  \"contexts\": [";
  bool first = true;
  for (const auto& [name, C] : classes) {
    if (!C.queue_context) continue;
    os << (first ? "" : ", ") << "\"" << name << "\"";
    first = false;
  }
  os << "],\n  \"classes\": [\n";
  first = true;
  for (const std::string& n : nodes) {
    const ClassInfo& C = classes.at(n);
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << n << "\", \"file\": \"" << base_name(C.path)
       << "\", \"affine\": " << (C.affine ? "true" : "false")
       << ", \"queue_context\": " << (C.queue_context ? "true" : "false")
       << ", \"boundary\": "
       << (boundary_classes().count(n) != 0 ? "true" : "false")
       << ", \"contexts\": [";
    const auto it = reached_by.find(n);
    if (it != reached_by.end()) {
      bool f2 = true;
      for (const std::string& r : it->second) {
        os << (f2 ? "" : ", ") << "\"" << r << "\"";
        f2 = false;
      }
    }
    os << "]}";
  }
  os << "\n  ],\n  \"edges\": [\n";
  first = true;
  auto edges = [&](const std::map<std::string, std::set<std::string>>& adj,
                   const char* kind) {
    for (const auto& [from, tos] : adj) {
      if (nodes.count(from) == 0) continue;
      for (const std::string& to : tos) {
        if (nodes.count(to) == 0) continue;
        if (!first) os << ",\n";
        first = false;
        os << "    {\"from\": \"" << from << "\", \"to\": \"" << to
           << "\", \"kind\": \"" << kind << "\"}";
      }
    }
  };
  edges(g.own, "own");
  edges(g.uses, "uses");
  edges(g.touch, "touch");
  os << "\n  ]\n}\n";
}

// ---------------------------------------------------------------------------
// Driver.

struct Summary {
  std::map<std::string, int> findings;
  std::map<std::string, int> suppressed;
};

void apply_suppressions(const SourceFile& sf, std::vector<Finding>& fs) {
  for (Finding& f : fs) {
    if (f.file != sf.path) continue;
    for (int l : {f.line, f.line - 1}) {
      const auto it = sf.allows.find(l);
      if (it != sf.allows.end() &&
          (it->second.count(f.rule) != 0 || it->second.count("all") != 0)) {
        f.suppressed = true;
        break;
      }
    }
  }
}

std::vector<std::string> expand_paths(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  for (const std::string& a : args) {
    if (fs::is_directory(a)) {
      for (const auto& e : fs::recursive_directory_iterator(a)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h")
          files.push_back(e.path().string());
      }
    } else if (fs::is_regular_file(a)) {
      files.push_back(a);
    } else {
      std::cerr << "teco-lint: no such file or directory: " << a << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

void print_rules() {
  std::cout << "teco-lint rules:\n";
  for (const RuleInfo& r : kRules) {
    std::cout << "  " << r.id << "\n    " << r.summary << "\n    fix: "
              << r.hint << "\n";
  }
  std::cout << "suppression: // teco-lint: allow(<rule>[,<rule>...]) on the "
               "finding's line or the line above\n"
               "reduce tag:  // teco-lint: reduce on the line of (or above) "
               "a loop marks it a reduce path for fp-reduce\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  long max_suppressions = -1;
  bool summary = true;
  std::set<std::string> enabled;  // empty = all rules
  enum class MapMode { kOff, kStdout, kFiles };
  MapMode map_mode = MapMode::kOff;
  std::string map_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-rules") {
      print_rules();
      return 0;
    } else if (a == "--no-summary") {
      summary = false;
    } else if (a.rfind("--max-suppressions=", 0) == 0) {
      max_suppressions = std::stol(a.substr(19));
    } else if (a.rfind("--rules=", 0) == 0) {
      std::stringstream ss(a.substr(8));
      std::string id;
      while (std::getline(ss, id, ',')) {
        id.erase(
            std::remove_if(id.begin(), id.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            id.end());
        if (id.empty()) continue;
        if (!known_rule(id)) {
          std::cerr << "teco-lint: unknown rule '" << id
                    << "' in --rules (valid: " << valid_rules_list()
                    << ")\n";
          return 2;
        }
        enabled.insert(id);
      }
    } else if (a == "--ownership-map") {
      map_mode = MapMode::kStdout;
    } else if (a.rfind("--ownership-map=", 0) == 0) {
      map_mode = MapMode::kFiles;
      map_prefix = a.substr(16);
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "usage: teco_lint [--list-rules] [--no-summary]\n"
             "                 [--max-suppressions=N] [--rules=a,b,...]\n"
             "                 [--ownership-map[=PREFIX]] <file|dir>...\n"
             "  --ownership-map        print the cross-shard ownership "
             "graph as DOT and exit\n"
             "  --ownership-map=PREFIX write PREFIX.dot and PREFIX.json, "
             "then lint as usual\n"
             "  --rules=a,b            run only the listed rules\n";
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "teco-lint: unknown flag " << a << "\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: teco_lint [flags] <file|dir>...\n";
    return 2;
  }
  const auto rule_on = [&enabled](const char* id) {
    return enabled.empty() || enabled.count(id) != 0;
  };

  std::vector<SourceFile> sources;
  for (const std::string& p : expand_paths(paths)) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "teco-lint: cannot read " << p << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    SourceFile sf;
    sf.path = p;
    const std::string code = strip(buf.str(), sf);
    tokenize(code, sf);
    collect_decls(sf);
    sources.push_back(std::move(sf));
  }

  // Pass A: the whole-scan symbol table. A1 registers every class before
  // A2 merges out-of-line definitions, so a .cpp scanned before its header
  // still resolves.
  ClassTable classes;
  for (SourceFile& sf : sources) collect_classes(sf, classes);
  for (SourceFile& sf : sources) collect_out_of_line(sf, classes);

  // Pass B: rules. Include visibility for the determinism rules: a file
  // sees its own declarations plus those of any scanned file whose path
  // ends with one of its #include "..." paths.
  std::vector<Finding> all;
  Summary sum;
  for (const RuleInfo& r : kRules) {
    sum.findings[r.id] = 0;
    sum.suppressed[r.id] = 0;
  }
  std::set<std::pair<std::string, std::string>> touches;
  for (SourceFile& sf : sources) {
    Visibility vis;
    auto merge = [&vis](const SourceFile& s) {
      vis.unordered_vars.insert(s.unordered_vars.begin(),
                                s.unordered_vars.end());
      vis.ordered_vars.insert(s.ordered_vars.begin(), s.ordered_vars.end());
      vis.float_vars.insert(s.float_vars.begin(), s.float_vars.end());
      vis.unordered_types.insert(s.unordered_types.begin(),
                                 s.unordered_types.end());
    };
    merge(sf);
    for (const std::string& inc : sf.includes) {
      for (const SourceFile& other : sources) {
        const std::string& op = other.path;
        if (op.size() >= inc.size() &&
            op.compare(op.size() - inc.size(), inc.size(), inc) == 0) {
          merge(other);
        }
      }
    }
    std::vector<Finding> fs;
    scan_loops(sf, vis, fs);
    scan_wallclock(sf, fs);
    scan_ptr_order(sf, vis, fs);
    scan_queue_lambdas(sf, classes, fs, touches);
    fs.erase(std::remove_if(fs.begin(), fs.end(),
                            [&](const Finding& f) {
                              return !rule_on(f.rule.c_str());
                            }),
             fs.end());
    apply_suppressions(sf, fs);
    all.insert(all.end(), fs.begin(), fs.end());
  }

  // Whole-scan rules: CausalSink coverage and cross-shard reachability.
  const OwnershipGraph graph = build_graph(classes, touches);
  const auto reached_by = reach_contexts(classes, graph);
  {
    std::vector<Finding> fs;
    scan_cross_shard(classes, reached_by, fs);
    fs.erase(std::remove_if(fs.begin(), fs.end(),
                            [&](const Finding& f) {
                              return !rule_on(f.rule.c_str());
                            }),
             fs.end());
    for (const SourceFile& sf : sources) apply_suppressions(sf, fs);
    all.insert(all.end(), fs.begin(), fs.end());
  }

  if (map_mode != MapMode::kOff) {
    const std::set<std::string> nodes = map_nodes(classes, graph, reached_by);
    if (map_mode == MapMode::kStdout) {
      emit_dot(std::cout, classes, graph, nodes);
      return 0;
    }
    std::ofstream dot(map_prefix + ".dot");
    std::ofstream js(map_prefix + ".json");
    if (!dot || !js) {
      std::cerr << "teco-lint: cannot write ownership map to " << map_prefix
                << ".{dot,json}\n";
      return 2;
    }
    emit_dot(dot, classes, graph, nodes);
    emit_json(js, classes, graph, nodes, reached_by);
    std::cerr << "teco-lint: ownership map written to " << map_prefix
              << ".dot and " << map_prefix << ".json\n";
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });

  int open = 0, suppressed_total = 0;
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++sum.suppressed[f.rule];
      ++suppressed_total;
      continue;
    }
    ++sum.findings[f.rule];
    ++open;
    const RuleInfo& r = rule_info(f.rule);
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.detail << " — " << r.summary << "\n    fix: " << r.hint
              << "\n";
  }

  if (summary) {
    std::cout << "teco-lint summary (" << sources.size() << " file"
              << (sources.size() == 1 ? "" : "s") << ")\n";
    std::cout << "  rule              findings  suppressed\n";
    for (const RuleInfo& r : kRules) {
      std::printf("  %-18s %8d  %10d\n", r.id, sum.findings[r.id],
                  sum.suppressed[r.id]);
    }
    std::printf("  %-18s %8d  %10d\n", "total", open, suppressed_total);
  }

  if (max_suppressions >= 0 && suppressed_total > max_suppressions) {
    std::cerr << "teco-lint: suppression count " << suppressed_total
              << " exceeds budget " << max_suppressions
              << " (new allow() comments need review; raise the budget in "
                 "scripts/lint.sh deliberately)\n";
    return 2;
  }
  return open == 0 ? 0 : 1;
}
