// Timeline-engine tests: step model, runtimes, experiment aggregations.
#include <gtest/gtest.h>

#include <tuple>

#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "offload/experiments.hpp"
#include "offload/runtime.hpp"
#include "offload/step_model.hpp"

namespace teco::offload {
namespace {

const Calibration& cal() { return default_calibration(); }

TEST(StepModel, FlopsScaleWithArchitecture) {
  const double small = flops_per_sample(dl::gpt2());
  const double large = flops_per_sample(dl::gpt2_11b());
  EXPECT_GT(large, small * 10);
  EXPECT_GT(flops_per_sample(dl::gcnii()), 0.0);
}

TEST(StepModel, DurationsPositiveAndMonotoneInBatch) {
  const auto m = dl::bert_large_cased();
  const auto b4 = compute_step_inputs(m, 4, cal());
  const auto b16 = compute_step_inputs(m, 16, cal());
  EXPECT_GT(b4.forward, 0.0);
  EXPECT_GT(b4.backward, b4.forward);  // Backward ~2x forward.
  EXPECT_GT(b16.forward, b4.forward);
  // CPU phases are batch-independent (parameter-count bound).
  EXPECT_DOUBLE_EQ(b4.adam, b16.adam);
  EXPECT_DOUBLE_EQ(b4.grad_clip, b16.grad_clip);
  EXPECT_EQ(b4.param_bytes, m.n_params * 4);
  EXPECT_EQ(b4.param_lines, (m.n_params * 4 + 63) / 64);
}

TEST(StepModel, FitsOnGpuReproducesTable4OOM) {
  EXPECT_TRUE(fits_on_gpu(dl::t5_large(), 4));
  EXPECT_TRUE(fits_on_gpu(dl::t5_large(), 8));
  EXPECT_FALSE(fits_on_gpu(dl::t5_large(), 16));  // The N/A cell.
  EXPECT_TRUE(fits_on_gpu(dl::bert_large_cased(), 20));
  EXPECT_TRUE(fits_on_gpu(dl::gpt2_11b(), 4));  // With checkpointing.
}

TEST(Runtime, Names) {
  EXPECT_EQ(to_string(RuntimeKind::kZeroOffload), "ZeRO-Offload");
  EXPECT_EQ(to_string(RuntimeKind::kTecoReduction), "TECO-Reduction");
}

TEST(Runtime, BreakdownComponentsNonNegative) {
  for (const auto kind :
       {RuntimeKind::kZeroOffload, RuntimeKind::kZeroOffloadDpu,
        RuntimeKind::kCxlInvalidation, RuntimeKind::kTecoCxl,
        RuntimeKind::kTecoReduction}) {
    const auto b = simulate_step(kind, dl::bert_large_cased(), 4, cal());
    EXPECT_GT(b.forward_backward, 0.0);
    EXPECT_GE(b.grad_transfer_exposed, 0.0);
    EXPECT_GT(b.grad_optimizer, 0.0);
    EXPECT_GT(b.param_optimizer, 0.0);
    EXPECT_GE(b.param_transfer_exposed, 0.0);
    EXPECT_GT(b.bytes_to_cpu, 0u);
    EXPECT_GT(b.bytes_to_device, 0u);
  }
}

class SpeedupGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(SpeedupGrid, TecoNeverSlower) {
  const auto [model_idx, batch] = GetParam();
  const auto m = dl::table3_models()[static_cast<std::size_t>(model_idx)];
  if (!fits_on_gpu(m, batch)) GTEST_SKIP() << "OOM configuration";
  const auto base = simulate_step(RuntimeKind::kZeroOffload, m, batch, cal());
  const auto cxl = simulate_step(RuntimeKind::kTecoCxl, m, batch, cal());
  const auto red =
      simulate_step(RuntimeKind::kTecoReduction, m, batch, cal());
  EXPECT_GE(base.total(), cxl.total());
  EXPECT_GE(cxl.total() + 1e-12, red.total());
  // TECO-Reduction beats the baseline by the paper's 1.08x-1.82x band
  // (allow a little slack on both sides).
  const double speedup = base.total() / red.total();
  EXPECT_GE(speedup, 1.02);
  EXPECT_LE(speedup, 2.1);
}

INSTANTIATE_TEST_SUITE_P(
    ModelsByBatch, SpeedupGrid,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(4u, 8u, 16u)));

TEST(Runtime, CommFractionShrinksWithBatch) {
  // Table I's trend.
  const auto m = dl::bert_large_cased();
  double prev = 1.0;
  for (const std::uint32_t b : {4u, 8u, 16u, 20u}) {
    const auto s = simulate_step(RuntimeKind::kZeroOffload, m, b, cal());
    EXPECT_LT(s.comm_fraction(), prev);
    prev = s.comm_fraction();
  }
}

TEST(Runtime, TableIMatchesPaperWithinTolerance) {
  const auto m = dl::bert_large_cased();
  const double paper[] = {0.4224, 0.3787, 0.2865, 0.2595};
  const std::uint32_t batches[] = {4, 8, 16, 20};
  for (int i = 0; i < 4; ++i) {
    const auto s =
        simulate_step(RuntimeKind::kZeroOffload, m, batches[i], cal());
    EXPECT_NEAR(s.comm_fraction(), paper[i], 0.05)
        << "batch " << batches[i];
  }
}

TEST(Runtime, DbaHalvesParameterVolume) {
  const auto m = dl::bert_large_cased();
  const auto cxl = simulate_step(RuntimeKind::kTecoCxl, m, 4, cal());
  const auto red = simulate_step(RuntimeKind::kTecoReduction, m, 4, cal());
  EXPECT_NEAR(static_cast<double>(red.bytes_to_device) / cxl.bytes_to_device,
              0.5, 0.01);
  EXPECT_EQ(red.bytes_to_cpu, cxl.bytes_to_cpu);  // Gradients untouched.
}

TEST(Runtime, DirtyBytesSweepScalesVolume) {
  const auto m = dl::gpt2();
  const auto full = simulate_step(RuntimeKind::kTecoCxl, m, 4, cal());
  for (std::uint8_t n = 1; n <= 3; ++n) {
    StepOptions opts;
    opts.dirty_bytes = n;
    const auto s = simulate_step(RuntimeKind::kTecoReduction, m, 4, cal(),
                                 opts);
    EXPECT_NEAR(static_cast<double>(s.bytes_to_device) / full.bytes_to_device,
                n / 4.0, 0.01);
  }
}

TEST(Runtime, InvalidationSlowerThanUpdate) {
  // Section IV-A2 motivation: on-demand transfers raise training time by
  // ~56.6 % on average, up to ~2x for T5-large.
  double worst = 0.0, sum = 0.0;
  int n = 0;
  for (const auto& m : dl::table3_models()) {
    const auto inv = simulate_step(RuntimeKind::kCxlInvalidation, m, 4, cal());
    const auto upd = simulate_step(RuntimeKind::kTecoCxl, m, 4, cal());
    const double overhead = inv.total() / upd.total() - 1.0;
    EXPECT_GT(overhead, 0.0) << m.name;
    worst = std::max(worst, overhead);
    sum += overhead;
    ++n;
  }
  EXPECT_GT(sum / n, 0.30);
  EXPECT_LT(sum / n, 0.90);
  EXPECT_GT(worst, 0.80);  // T5-class models approach +100 %.
}

TEST(Runtime, DpuHidesParameterTransfer) {
  const auto m = dl::bert_large_cased();
  const auto plain = simulate_step(RuntimeKind::kZeroOffload, m, 8, cal());
  const auto dpu = simulate_step(RuntimeKind::kZeroOffloadDpu, m, 8, cal());
  EXPECT_LT(dpu.param_transfer_exposed, plain.param_transfer_exposed);
}

TEST(Runtime, GradTransferHiddenAtLargeBatch) {
  // Fig. 12: gradient transfer fully hidden at batch >= 8, >=69 % hidden
  // at smaller batches.
  const auto m = dl::t5_large();
  const auto b8 = simulate_step(RuntimeKind::kTecoCxl, m, 8, cal());
  EXPECT_LT(b8.grad_transfer_exposed, sim::ms(2.0));
  // At batch 4 the transfer is partially exposed but >= 69 % of the raw
  // gradient transfer time is hidden by the backward overlap.
  const auto b4 = simulate_step(RuntimeKind::kTecoCxl, m, 4, cal());
  const double raw_transfer =
      static_cast<double>(m.gradient_bytes()) / cal().phy.cxl_bandwidth();
  EXPECT_LT(b4.grad_transfer_exposed, 0.31 * raw_transfer);
}

TEST(Runtime, DbaHidesParamTransferCompletely) {
  // Fig. 12: with DBA the parameter transfer is completely hidden for
  // T5-large (transfer halves; Adam window covers it).
  const auto red = simulate_step(RuntimeKind::kTecoReduction,
                                 dl::t5_large(), 4, cal());
  EXPECT_LT(red.param_transfer_exposed, sim::ms(1.0));
  const auto cxl = simulate_step(RuntimeKind::kTecoCxl,
                                 dl::t5_large(), 4, cal());
  EXPECT_GT(cxl.param_transfer_exposed, red.param_transfer_exposed);
}

TEST(Experiments, SpeedupCellHandlesOom) {
  const auto c = speedup_vs_baseline(RuntimeKind::kTecoReduction,
                                     dl::t5_large(), 16, cal());
  EXPECT_FALSE(c.valid);
  const auto ok = speedup_vs_baseline(RuntimeKind::kTecoReduction,
                                      dl::t5_large(), 8, cal());
  EXPECT_TRUE(ok.valid);
  EXPECT_GT(ok.speedup, 1.0);
}

TEST(Experiments, GridCoversFullGraphModelsOnce) {
  const auto cells = speedup_grid(RuntimeKind::kTecoCxl, dl::table3_models(),
                                  {4, 8, 16}, cal());
  // 4 batched models x 3 batches + 1 GCNII cell.
  EXPECT_EQ(cells.size(), 13u);
}

TEST(Experiments, VolumeReportMatchesSectionVIIIC) {
  const auto r = volume_report(RuntimeKind::kTecoReduction,
                               dl::bert_large_cased(), 4, cal());
  EXPECT_NEAR(r.param_volume_reduction, 0.5, 0.02);  // DBA: 50 %.
  EXPECT_GT(r.comm_overhead_reduction, 0.80);
  EXPECT_LE(r.comm_overhead_reduction, 1.0);
}

TEST(Experiments, ScheduleMixesPreAndPostActivation) {
  const auto m = dl::gpt2();
  const auto cxl_only = schedule_training_time(
      RuntimeKind::kTecoReduction, m, 4, 1000, 1000, cal());
  const auto red_only = schedule_training_time(
      RuntimeKind::kTecoReduction, m, 4, 1000, 0, cal());
  const auto mixed = schedule_training_time(RuntimeKind::kTecoReduction, m, 4,
                                            1000, 500, cal());
  EXPECT_GT(cxl_only, red_only);
  EXPECT_GT(mixed, red_only);
  EXPECT_LT(mixed, cxl_only);
  EXPECT_NEAR(mixed, (cxl_only + red_only) / 2.0, 1e-9);
}

TEST(Experiments, HeadlineSummaryMatchesPaperBand) {
  // Paper: training time -33.7 % avg; communication overhead -93.7 % avg
  // (up to 100 %). Accept the reproduction within a band.
  const auto h = headline_summary(dl::table3_models(), {4, 8, 16}, cal());
  EXPECT_EQ(h.cells, 12u);  // 13 minus the T5 OOM cell.
  EXPECT_GT(h.avg_time_reduction, 0.22);
  EXPECT_LT(h.avg_time_reduction, 0.45);
  EXPECT_GT(h.avg_comm_reduction, 0.85);
  EXPECT_LE(h.max_comm_reduction, 1.0);
}

}  // namespace
}  // namespace teco::offload
