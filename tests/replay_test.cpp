// Trace-replay integration tests: the protocol stack and the analytic
// timeline must tell the same story.
#include <gtest/gtest.h>

#include "cxl/channel.hpp"
#include "mem/address.hpp"
#include "offload/calibration.hpp"
#include "offload/trace_replay.hpp"

namespace teco::offload {
namespace {

ReplayStepConfig small_step() {
  ReplayStepConfig cfg;
  cfg.param_lines = 20'000;
  cfg.grad_lines = 20'000;
  cfg.forward = sim::ms(5);
  cfg.backward = sim::ms(10);
  cfg.grad_clip = sim::ms(1);
  cfg.adam = sim::ms(4);
  return cfg;
}

TEST(Replay, UpdateProtocolVolumes) {
  const auto r = replay_training_step(small_step(),
                                      default_calibration());
  EXPECT_EQ(r.bytes_to_cpu, 20'000u * 64u);
  EXPECT_EQ(r.bytes_to_device, 20'000u * 64u);
  EXPECT_EQ(r.agent_stats.update_pushes, 40'000u);
  EXPECT_EQ(r.agent_stats.demand_fetches, 0u);
  EXPECT_EQ(r.snoop_filter_peak, 0u);  // The Section IV-A2 claim.
  EXPECT_EQ(r.agent_stats.cpu_flushes, 20'000u);
}

TEST(Replay, DbaHalvesParameterVolumeOnly) {
  auto cfg = small_step();
  cfg.dba = dba::DbaRegister(true, 2);
  const auto r = replay_training_step(cfg, default_calibration());
  EXPECT_EQ(r.bytes_to_device, 20'000u * 32u);  // Params trimmed.
  EXPECT_EQ(r.bytes_to_cpu, 20'000u * 64u);     // Gradients full.
}

TEST(Replay, MatchesAnalyticChannelTimeline) {
  // The replay pushes 20k parameter lines one at a time; the runtime's
  // paced_line_stream pushes the same lines in 128 chunks. Both sit on the
  // identical Channel model, so the exposed parameter-transfer time must
  // agree closely.
  const auto& cal = default_calibration();
  const auto cfg = small_step();
  const auto r = replay_training_step(cfg, cal);

  cxl::Channel down("check", cal.phy.cxl_bandwidth(), cal.phy.packet_latency,
                    cal.cxl_queue_entries);
  const auto pkt =
      cxl::data_packet(cxl::MessageType::kFlushData, 0, mem::kLineBytes);
  // Same production schedule as the replay's Adam sweep, starting at the
  // replay's adam_start (grads fully hidden here, so cpu starts at
  // forward+backward plus nothing).
  const sim::Time adam_start = r.grads_fence + cfg.grad_clip;
  sim::Time last = adam_start;
  for (std::uint64_t i = 0; i < cfg.param_lines; ++i) {
    const sim::Time ready =
        adam_start + cfg.adam * static_cast<double>(i + 1) /
                         static_cast<double>(cfg.param_lines);
    last = down.submit(ready, pkt).delivered;
  }
  const sim::Time expected_exposed =
      std::max(0.0, last - (adam_start + cfg.adam));
  EXPECT_NEAR(r.param_exposed, expected_exposed,
              0.02 * expected_exposed + 1e-6);
}

TEST(Replay, ShuffleDoesNotChangeThroughput) {
  // The link serializes writebacks regardless of address order; only
  // addresses differ, not timing.
  auto seq = small_step();
  auto shuf = small_step();
  shuf.shuffle = true;
  const auto a = replay_training_step(seq, default_calibration());
  const auto b = replay_training_step(shuf, default_calibration());
  EXPECT_NEAR(a.param_exposed, b.param_exposed, 1e-9);
  EXPECT_NEAR(a.grad_exposed, b.grad_exposed, 1e-9);
  EXPECT_EQ(a.bytes_to_device, b.bytes_to_device);
}

TEST(Replay, InvalidationExposesTransfersAndGrowsSnoopFilter) {
  auto cfg = small_step();
  cfg.protocol = coherence::Protocol::kInvalidation;
  const auto inv = replay_training_step(cfg, default_calibration());
  const auto upd = replay_training_step(small_step(), default_calibration());
  EXPECT_GT(inv.param_exposed, upd.param_exposed);
  EXPECT_GT(inv.grad_exposed, upd.grad_exposed);
  EXPECT_GT(inv.step_total, upd.step_total);
  EXPECT_GT(inv.agent_stats.demand_fetches, 0u);
  EXPECT_GT(inv.snoop_filter_peak, 0u);   // Directory needed again.
  EXPECT_EQ(upd.snoop_filter_peak, 0u);
}

TEST(Replay, GradStreamHiddenWhenBackwardLongEnough)  {
  auto cfg = small_step();
  // 20k lines = 1.28 MB; at 15 GB/s that is ~85 us << 10 ms backward.
  const auto r = replay_training_step(cfg, default_calibration());
  EXPECT_LT(r.grad_exposed, sim::us(10));
  // Exposed when the backward window is shorter than the transfer.
  cfg.backward = sim::us(20);
  const auto tight = replay_training_step(cfg, default_calibration());
  EXPECT_GT(tight.grad_exposed, sim::us(30));
}

TEST(Replay, StepTotalComposition) {
  const auto cfg = small_step();
  const auto r = replay_training_step(cfg, default_calibration());
  EXPECT_NEAR(r.step_total,
              cfg.forward + cfg.backward + r.grad_exposed + cfg.grad_clip +
                  cfg.adam + r.param_exposed,
              1e-12);
}

}  // namespace
}  // namespace teco::offload
