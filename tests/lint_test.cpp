// teco-lint tests: golden findings on the committed clean + planted
// fixtures (one per rule), suppression accounting, the whole-src/ clean
// gate, and regression tests for the two real determinism fixes the linter
// surfaced (BackingStore::for_each_line visit order and
// ProtocolChecker::verify_quiescent sweep order).
//
// The linter binary and fixture paths arrive via compile definitions from
// tests/CMakeLists.txt (TECO_LINT_BIN, TECO_LINT_FIXTURES, TECO_LINT_SRC).
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/home_agent.hpp"
#include "core/annotations.hpp"
#include "cxl/link.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "sim/rng.hpp"

namespace teco {
namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(TECO_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn " << cmd;
  LintRun r;
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(TECO_LINT_FIXTURES) + "/" + name;
}

// --- Golden fixture findings ----------------------------------------------

TEST(TecoLint, ListRulesShowsTheWholeCatalogue) {
  const LintRun r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "wallclock", "ptr-order", "fp-reduce",
        "queue-capture", "shard-coverage", "cross-shard"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
  EXPECT_NE(r.output.find("allow("), std::string::npos);
}

TEST(TecoLint, CleanFixtureHasNoFindings) {
  const LintRun r = run_lint(fixture("clean.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("total                     0           0"),
            std::string::npos)
      << r.output;
}

TEST(TecoLint, PlantedUnorderedIterIsCaughtAtThePlantedLine) {
  const LintRun r = run_lint(fixture("planted_unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(
      r.output.find("planted_unordered_iter.cpp:20: [unordered-iter]"),
      std::string::npos)
      << r.output;
  // The finding names the container and the escaping call.
  EXPECT_NE(r.output.find("'deadlines'"), std::string::npos);
  EXPECT_NE(r.output.find("schedule_at"), std::string::npos);
}

TEST(TecoLint, PlantedWallclockIsCaughtAtBothPlantedLines) {
  const LintRun r = run_lint(fixture("planted_wallclock.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("planted_wallclock.cpp:13: [wallclock]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_wallclock.cpp:18: [wallclock]"),
            std::string::npos)
      << r.output;
}

TEST(TecoLint, PlantedPtrOrderIsCaughtAtBothPlantedLines) {
  const LintRun r = run_lint(fixture("planted_ptr_order.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("planted_ptr_order.cpp:14: [ptr-order]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_ptr_order.cpp:18: [ptr-order]"),
            std::string::npos)
      << r.output;
}

TEST(TecoLint, PlantedFpReduceIsCaughtInBothForms) {
  const LintRun r = run_lint(fixture("planted_fp_reduce.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // Hash-order accumulation and the tagged reduce loop.
  EXPECT_NE(r.output.find("planted_fp_reduce.cpp:15: [fp-reduce]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_fp_reduce.cpp:23: [fp-reduce]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("tagged reduce loop"), std::string::npos);
}

TEST(TecoLint, PlantedQueueCaptureIsCaughtAtAllFourPlantedLines) {
  const LintRun r = run_lint(fixture("planted_queue_capture.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // Unannotated this-capture, annotated-but-unestablished this-capture,
  // reference capture of a parameter, and a default capture.
  EXPECT_NE(r.output.find("planted_queue_capture.cpp:23: [queue-capture]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_queue_capture.cpp:35: [queue-capture]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_queue_capture.cpp:56: [queue-capture]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_queue_capture.cpp:64: [queue-capture]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'this' of unannotated 'BareCounter'"),
            std::string::npos);
  EXPECT_NE(
      r.output.find("'LazyHolder' without establishing the shard token"),
      std::string::npos);
  EXPECT_NE(r.output.find("'&led' of unannotated 'Ledger'"),
            std::string::npos);
  EXPECT_NE(r.output.find("default capture"), std::string::npos);
}

TEST(TecoLint, PlantedShardCoverageIsCaughtAtBothPlantedLines) {
  const LintRun r = run_lint(fixture("planted_shard_coverage.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // A mutation queue-capture cannot see (no trailing-underscore fields,
  // non-const method call), and an unannotated CausalSink implementor.
  EXPECT_NE(r.output.find("planted_shard_coverage.cpp:17: [shard-coverage]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("planted_shard_coverage.cpp:33: [shard-coverage]"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'bump()' of 'Tally'"), std::string::npos);
  EXPECT_NE(r.output.find("'DropSink' implements sim::CausalSink"),
            std::string::npos);
  // But no queue-capture noise: Tally has nothing the capture rule tracks.
  EXPECT_EQ(r.output.find("[queue-capture]"), std::string::npos) << r.output;
}

TEST(TecoLint, PlantedCrossShardIsCaughtAtTheClassDecl) {
  const LintRun r = run_lint(fixture("planted_cross_shard.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("planted_cross_shard.cpp:19: [cross-shard]"),
            std::string::npos)
      << r.output;
  // The finding enumerates both offending contexts, sorted.
  EXPECT_NE(r.output.find("'SharedAccumulator' is reachable from queue "
                          "contexts {ConsumerContext, ProducerContext}"),
            std::string::npos)
      << r.output;
  // MiniQueue is reached by both contexts too but is not shard-affine.
  EXPECT_EQ(r.output.find("MiniQueue"), std::string::npos) << r.output;
}

TEST(TecoLint, CleanShardedNearMissesStayClean) {
  // Asserted this-capture, by-value capture, and a boundary-mediated
  // crossing: all legal, all one keystroke from a violation.
  const LintRun r = run_lint(fixture("clean_sharded.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("total                     0           0"),
            std::string::npos)
      << r.output;
}

TEST(TecoLint, SuppressionIsCountedButDoesNotFail) {
  const LintRun r = run_lint(fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("unordered-iter            0           1"),
            std::string::npos)
      << r.output;
}

TEST(TecoLint, SuppressionBudgetIsEnforced) {
  const LintRun r =
      run_lint("--max-suppressions=0 " + fixture("suppressed.cpp"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("exceeds budget"), std::string::npos);
}

TEST(TecoLint, UnknownAllowRuleIsRejected) {
  // A typo'd allow() must be an error, not a silent no-op suppression.
  const std::string tmp = testing::TempDir() + "/bad_allow.cpp";
  FILE* f = fopen(tmp.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("// teco-lint: allow(unordred-iter)\nint x;\n", f);
  fclose(f);
  const LintRun r = run_lint(tmp);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("unknown rule"), std::string::npos);
  // The error teaches the fix: it lists every valid rule name.
  EXPECT_NE(r.output.find("valid:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unordered-iter"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("cross-shard"), std::string::npos) << r.output;
}

// --- Ownership map golden --------------------------------------------------
// --ownership-map=PREFIX over the clean sharded fixture must reproduce the
// committed DOT + JSON byte for byte (node/edge iteration is over sorted
// containers and the JSON keys file basenames, so the goldens are
// machine-independent).

std::string slurp(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string s;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), f)) > 0) s.append(buf.data(), n);
  fclose(f);
  return s;
}

TEST(TecoLint, OwnershipMapMatchesCommittedGoldens) {
  const std::string prefix = testing::TempDir() + "/teco_ownership_map";
  const LintRun r = run_lint("--ownership-map=" + prefix + " " +
                             fixture("clean_sharded.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ownership map written"), std::string::npos)
      << r.output;
  const std::string got_dot = slurp(prefix + ".dot");
  const std::string got_json = slurp(prefix + ".json");
  EXPECT_EQ(got_dot, slurp(fixture("ownership_map.dot")));
  EXPECT_EQ(got_json, slurp(fixture("ownership_map.json")));
  // Spot-check the semantics the golden encodes: the boundary class is
  // reached by both contexts, and nothing behind it is.
  EXPECT_NE(got_json.find("\"name\": \"EventChannel\""), std::string::npos);
  EXPECT_NE(got_json.find("\"contexts\": [\"LeftContext\", \"RightContext\"]"),
            std::string::npos);
  EXPECT_NE(
      got_json.find("{\"name\": \"SharedTotal\", \"file\": "
                    "\"clean_sharded.cpp\", \"affine\": true, "
                    "\"queue_context\": false, \"boundary\": false, "
                    "\"contexts\": []}"),
      std::string::npos)
      << got_json;
}

TEST(TecoLint, RulesFilterRunsOnlyTheNamedRules) {
  // planted_queue_capture trips queue-capture AND shard-coverage; the
  // filter must be able to slice either one out.
  const LintRun cap = run_lint("--rules=queue-capture " +
                               fixture("planted_queue_capture.cpp"));
  EXPECT_EQ(cap.exit_code, 1);
  EXPECT_NE(cap.output.find("[queue-capture]"), std::string::npos);
  EXPECT_EQ(cap.output.find("[shard-coverage]"), std::string::npos)
      << cap.output;
  const LintRun bad = run_lint("--rules=queue-cpature " +
                               fixture("planted_queue_capture.cpp"));
  EXPECT_EQ(bad.exit_code, 2) << bad.output;
  EXPECT_NE(bad.output.find("valid:"), std::string::npos) << bad.output;
}

// The headline gate: the committed tree carries zero unsuppressed findings.
// If this fails, either fix the hazard or add a reviewed allow() comment
// (and bump the budget in scripts/lint.sh).
TEST(TecoLint, SourceTreeIsClean) {
  const LintRun r = run_lint(std::string(TECO_LINT_SRC));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- Determinism regression: BackingStore::for_each_line ------------------
// The linter flagged for_each_line's unordered iteration escaping into the
// ft checkpoint path; the fix pins ascending address order. These tests
// keep it pinned.

std::string visit_trace(const mem::BackingStore& store) {
  std::string t;
  store.for_each_line([&](mem::Addr base, const mem::BackingStore::Line& l) {
    t += std::to_string(base) + ":" + std::to_string(l[0]) + "|";
  });
  return t;
}

TEST(DeterminismFix, BackingStoreVisitsLinesInAscendingAddressOrder) {
  mem::BackingStore store;
  for (const std::uint64_t idx : {7u, 2u, 9u, 0u, 5u}) {
    mem::BackingStore::Line line{};
    line[0] = static_cast<std::uint8_t>(idx);
    store.write_line(idx * mem::kLineBytes, line);
  }
  std::vector<mem::Addr> visited;
  store.for_each_line(
      [&](mem::Addr base, const mem::BackingStore::Line&) {
        visited.push_back(base);
      });
  const std::vector<mem::Addr> want = {0 * mem::kLineBytes,
                                       2 * mem::kLineBytes,
                                       5 * mem::kLineBytes,
                                       7 * mem::kLineBytes,
                                       9 * mem::kLineBytes};
  EXPECT_EQ(visited, want);
}

TEST(DeterminismFix, BackingStoreTraceIsSeededDoubleRunIdentical) {
  // Two seeded runs writing the same pseudo-random working set must
  // serialize identical traces — and so must a run inserting the same
  // lines in a different order (hash-table layout must not show through).
  auto build = [](std::uint64_t seed, bool reversed) {
    sim::Rng rng(seed);
    std::vector<std::uint64_t> indices;
    indices.reserve(64);
    for (int i = 0; i < 64; ++i) indices.push_back(rng.next_u64() % 512);
    if (reversed) std::reverse(indices.begin(), indices.end());
    mem::BackingStore store;
    for (const std::uint64_t idx : indices) {
      mem::BackingStore::Line line{};
      line[0] = static_cast<std::uint8_t>(idx & 0xff);
      store.write_line(idx * mem::kLineBytes, line);
    }
    return visit_trace(store);
  };
  const std::string a = build(42, false);
  const std::string b = build(42, false);
  const std::string c = build(42, true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_NE(a.find(":"), std::string::npos);
}

// --- Determinism regression: ProtocolChecker::verify_quiescent ------------
// The quiescent sweep used to walk the unordered line map directly, so
// which violation was reported first depended on hash layout. The fix
// sorts the sweep; the count-mode violation log must now be identical
// regardless of the order in which state was planted.

std::vector<std::string> quiescent_violations(
    const std::vector<std::uint64_t>& plant_order) {
  cxl::Link link;
  coherence::GiantCache gc(1ull << 20);
  mem::Cache cpu_cache(mem::llc_config());
  gc.map_region("params", 0x1000, 64 * 16, coherence::MesiState::kExclusive,
                /*dba_eligible=*/true);
  coherence::HomeAgent::Options opts;
  opts.protocol = coherence::Protocol::kUpdate;
  coherence::HomeAgent agent(link, gc, cpu_cache, opts);
  check::ProtocolChecker::Options copts;
  copts.level = check::CheckLevel::kCount;
  check::ProtocolChecker checker(agent, copts);
  // Plant stale directory entries through the observer hook (the checker
  // only tracks lines it has seen). Under the update protocol each one is
  // a snoop-filter violation at quiescence; on_sharer_change itself only
  // mirrors, so nothing is reported until the sweep.
  const auto cpu_bit = static_cast<std::uint8_t>(coherence::Sharer::kCpu);
  for (const std::uint64_t l : plant_order) {
    checker.on_sharer_change(0x1000 + l * mem::kLineBytes, 0, cpu_bit);
  }
  const std::size_t before = checker.violations().size();
  checker.verify_quiescent();
  return {checker.violations().begin() +
              static_cast<std::ptrdiff_t>(before),
          checker.violations().end()};
}

TEST(DeterminismFix, QuiescentSweepReportsViolationsInAddressOrder) {
  const auto a = quiescent_violations({3, 0, 2, 1});
  const auto b = quiescent_violations({1, 2, 0, 3});
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);  // Report order independent of plant order.
  // And the order is ascending by line address.
  for (std::size_t i = 0; i + 1 < a.size(); ++i) {
    EXPECT_LT(a[i].find("0x"), a[i].size());
  }
  std::vector<std::string> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(a, sorted);
}

// --- Annotations: positive compile + runtime no-op ------------------------
// The negative (must-NOT-compile) direction lives in
// tests/lint_fixtures/annotations_negative.cpp, run as a WILL_FAIL ctest
// entry under Clang (tests/CMakeLists.txt); GCC builds compile the macros
// to nothing, which this test locks in as harmless.

TEST(Annotations, ShardCapabilityIsAZeroCostNoOpAtRuntime) {
  core::ShardCapability shard;
  shard.assert_held();
  shard.enter();
  shard.exit();
  struct Guarded {
    core::ShardCapability shard;
    int counter TECO_SHARD_AFFINE(shard) = 0;
    int bump() {
      shard.assert_held();
      return ++counter;
    }
  } g;
  EXPECT_EQ(g.bump(), 1);
  EXPECT_EQ(g.bump(), 2);
}

}  // namespace
}  // namespace teco
