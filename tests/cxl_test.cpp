// Unit tests for the CXL link model: packets, serial channel, duplex link.
#include <gtest/gtest.h>

#include "cxl/channel.hpp"
#include "cxl/link.hpp"
#include "cxl/packet.hpp"
#include "cxl/phy.hpp"

namespace teco::cxl {
namespace {

using sim::Time;

TEST(Phy, Bandwidths) {
  PhyConfig phy;
  EXPECT_DOUBLE_EQ(phy.raw_bandwidth, 16e9);
  EXPECT_DOUBLE_EQ(phy.cxl_bandwidth(), 16e9 * 0.943);
  EXPECT_DOUBLE_EQ(phy.dma_bandwidth(), 16e9 * 0.85);
  EXPECT_DOUBLE_EQ(pcie5_phy().raw_bandwidth, 64e9);
}

TEST(Packet, WireSizes) {
  EXPECT_EQ(control_packet(MessageType::kInvalidate, 0).wire_bytes(), 16u);
  EXPECT_EQ(data_packet(MessageType::kFlushData, 0, 64).wire_bytes(), 64u);
  EXPECT_EQ(data_packet(MessageType::kFlushData, 0, 32, true).wire_bytes(),
            32u);
  EXPECT_TRUE(data_packet(MessageType::kFlushData, 0, 32, true)
                  .dba_aggregated);
}

TEST(Packet, MessageNames) {
  EXPECT_EQ(to_string(MessageType::kReadOwn), "ReadOwn");
  EXPECT_EQ(to_string(MessageType::kGoFlush), "GO_Flush");
  EXPECT_EQ(to_string(MessageType::kDemandRead), "DemandRead");
}

TEST(Channel, RejectsBadConfig) {
  EXPECT_THROW(Channel("x", 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Channel("x", 1e9, 0.0, 0), std::invalid_argument);
}

TEST(Channel, SingleTransferTiming) {
  Channel ch("t", 1e9, sim::us(1));  // 1 GB/s, 1 us latency.
  const auto d = ch.submit(0.0, data_packet(MessageType::kData, 0, 1000));
  EXPECT_DOUBLE_EQ(d.accepted, 0.0);
  EXPECT_DOUBLE_EQ(d.finished, 1e-6);           // 1000 B at 1 GB/s.
  EXPECT_DOUBLE_EQ(d.delivered, 2e-6);          // + latency.
  EXPECT_DOUBLE_EQ(ch.drain_time(), 2e-6);
}

TEST(Channel, SerializesBackToBack) {
  Channel ch("t", 1e9, 0.0);
  const auto pkt = data_packet(MessageType::kData, 0, 1000);
  const auto d1 = ch.submit(0.0, pkt);
  const auto d2 = ch.submit(0.0, pkt);  // Ready together; wire serializes.
  EXPECT_DOUBLE_EQ(d1.finished, 1e-6);
  EXPECT_DOUBLE_EQ(d2.finished, 2e-6);
}

TEST(Channel, IdleGapRespected) {
  Channel ch("t", 1e9, 0.0);
  const auto pkt = data_packet(MessageType::kData, 0, 1000);
  ch.submit(0.0, pkt);
  const auto d = ch.submit(1.0, pkt);  // Arrives long after wire is free.
  EXPECT_DOUBLE_EQ(d.finished, 1.0 + 1e-6);
}

TEST(Channel, QueueBackpressureStallsProducer) {
  Channel ch("t", 1e9, 0.0, /*queue_capacity=*/2);
  const auto pkt = data_packet(MessageType::kData, 0, 1000);
  ch.submit(0.0, pkt);             // Finishes at 1 us.
  ch.submit(0.0, pkt);             // Finishes at 2 us.
  const auto d3 = ch.submit(0.0, pkt);  // Queue full: waits for #1.
  EXPECT_DOUBLE_EQ(d3.accepted, 1e-6);
  EXPECT_DOUBLE_EQ(d3.finished, 3e-6);
  EXPECT_EQ(ch.stats().stalled_packets, 1u);
  EXPECT_GT(ch.stats().producer_stall, 0.0);
}

TEST(Channel, StreamMatchesRepeatedSubmits) {
  const auto pkt = data_packet(MessageType::kData, 0, 64);
  Channel a("a", 15e9, sim::ns(400));
  Channel b("b", 15e9, sim::ns(400));
  Delivery da{};
  for (int i = 0; i < 1000; ++i) da = a.submit(1e-3, pkt);
  const auto db = b.submit_stream(1e-3, pkt, 1000);
  EXPECT_NEAR(da.finished, db.finished, 1e-12);
  EXPECT_NEAR(da.delivered, db.delivered, 1e-12);
  EXPECT_EQ(a.stats().packets, b.stats().packets);
  EXPECT_EQ(a.stats().wire_bytes, b.stats().wire_bytes);
  EXPECT_NEAR(a.stats().busy_time, b.stats().busy_time, 1e-12);
}

TEST(Channel, StreamZeroCountIsNoop) {
  Channel ch("t", 1e9, 0.0);
  const auto d = ch.submit_stream(5.0, data_packet(MessageType::kData, 0, 64),
                                  0);
  EXPECT_DOUBLE_EQ(d.delivered, 5.0);
  EXPECT_EQ(ch.stats().packets, 0u);
}

TEST(Channel, StreamAccountsStalls) {
  Channel ch("t", 64e9, 0.0, 128);
  const auto pkt = data_packet(MessageType::kData, 0, 64);
  ch.submit_stream(0.0, pkt, 1000);
  EXPECT_EQ(ch.stats().stalled_packets, 1000u - 128u);
  EXPECT_GT(ch.stats().producer_stall, 0.0);
}

TEST(Channel, BandwidthAccounting) {
  Channel ch("t", 10e9, 0.0);
  ch.submit_stream(0.0, data_packet(MessageType::kData, 0, 64), 1000);
  EXPECT_EQ(ch.stats().payload_bytes, 64000u);
  EXPECT_NEAR(ch.stats().busy_time, 64000.0 / 10e9, 1e-15);
}

TEST(Channel, ResetClearsEverything) {
  Channel ch("t", 1e9, 0.0);
  ch.submit(0.0, data_packet(MessageType::kData, 0, 64));
  ch.reset();
  EXPECT_EQ(ch.stats().packets, 0u);
  EXPECT_DOUBLE_EQ(ch.drain_time(), 0.0);
}

TEST(Link, DirectionsAreIndependent) {
  Link link;
  const auto big = data_packet(MessageType::kData, 0, 1'000'000'000);
  link.send(Direction::kCpuToDevice, 0.0, big);
  const auto d = link.send(Direction::kDeviceToCpu, 0.0,
                           data_packet(MessageType::kData, 0, 64));
  // The up-direction packet is not delayed by the saturated down channel.
  EXPECT_LT(d.finished, 1e-6);
}

TEST(Link, FenceDrainsBothDirections) {
  Link link;
  const auto d1 = link.send(Direction::kCpuToDevice, 0.0,
                            data_packet(MessageType::kData, 0, 1'000'000));
  const auto d2 = link.send(Direction::kDeviceToCpu, 0.0,
                            data_packet(MessageType::kData, 0, 2'000'000));
  EXPECT_DOUBLE_EQ(link.fence_all(0.0), std::max(d1.delivered, d2.delivered));
  // Fence never goes backwards in time.
  EXPECT_DOUBLE_EQ(link.fence_all(100.0), 100.0);
}

TEST(Link, MessageCountsByType) {
  Link link;
  link.send(Direction::kCpuToDevice, 0.0,
            control_packet(MessageType::kInvalidate, 0));
  link.send_stream(Direction::kCpuToDevice, 0.0,
                   data_packet(MessageType::kFlushData, 0, 64), 10);
  EXPECT_EQ(link.message_counts().get("Invalidate"), 1u);
  EXPECT_EQ(link.message_counts().get("FlushData"), 10u);
  EXPECT_EQ(link.total_wire_bytes(), 16u + 640u);
  link.reset();
  EXPECT_EQ(link.message_counts().get("FlushData"), 0u);
}

}  // namespace
}  // namespace teco::cxl
