// Public-API tests: Session end-to-end flows and report formatting.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "core/session.hpp"
#include "core/teco.hpp"
#include "dba/disaggregator.hpp"

namespace teco::core {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t("Title");
  t.set_header({"model", "speedup"});
  t.add_row({"GPT2", "1.82x"});
  t.add_row({"Bert-large-cased", "1.60x"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| model"), std::string::npos);
  EXPECT_NE(s.find("Bert-large-cased"), std::string::npos);
  // Every row has the same width.
  std::size_t first_len = std::string::npos;
  std::size_t pos = s.find('\n') + 1;  // Skip title.
  while (pos < s.size()) {
    const auto e = s.find('\n', pos);
    if (e == std::string::npos) break;
    if (first_len == std::string::npos) first_len = e - pos;
    EXPECT_EQ(e - pos, first_len);
    pos = e + 1;
  }
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(1.236, 2), "1.24");
  EXPECT_EQ(TextTable::pct(0.425, 1), "42.5%");
  EXPECT_EQ(TextTable::ms(0.0123, 1), "12.3ms");
  EXPECT_EQ(TextTable::mib(1024.0 * 1024.0 * 2, 1), "2.0MiB");
}

TEST(Version, Exported) {
  EXPECT_EQ(teco::kVersionMajor, 1);
  EXPECT_STREQ(teco::kVersionString, "1.0.0");
}

TEST(Gantt, RendersLanesProportionally) {
  GanttChart g;
  g.add("gpu", 'F', 0.0, 0.5);
  g.add("gpu", 'B', 0.5, 1.0);
  g.add("link", '^', 0.25, 0.75);
  const auto out = g.render(40);
  EXPECT_NE(out.find("gpu "), std::string::npos);
  EXPECT_NE(out.find("link"), std::string::npos);
  // The F and B glyphs split the gpu lane roughly in half.
  const auto gpu_line = out.substr(0, out.find('\n'));
  const auto f_count = std::count(gpu_line.begin(), gpu_line.end(), 'F');
  const auto b_count = std::count(gpu_line.begin(), gpu_line.end(), 'B');
  EXPECT_NEAR(static_cast<double>(f_count), static_cast<double>(b_count),
              2.0);
  EXPECT_NE(out.find("1000.0 ms"), std::string::npos);
}

TEST(Gantt, EmptyChartRendersNothing) {
  GanttChart g;
  EXPECT_TRUE(g.render().empty());
}

TEST(Gantt, StepGanttCoversAllLanes) {
  const auto g = step_gantt(offload::RuntimeKind::kTecoReduction,
                            dl::bert_large_cased(), 4,
                            offload::default_calibration());
  const auto out = g.render();
  for (const char* lane :
       {"GPU fwd", "GPU bwd", "link up", "CPU clip", "CPU adam",
        "link down"}) {
    EXPECT_NE(out.find(lane), std::string::npos) << lane;
  }
  EXPECT_GT(g.span_end(), 0.0);
}

TEST(Gantt, TecoFinishesInsideAdamBaselineDoesNot) {
  const auto& cal = offload::default_calibration();
  const auto teco = step_gantt(offload::RuntimeKind::kTecoReduction,
                               dl::t5_large(), 4, cal);
  const auto base = step_gantt(offload::RuntimeKind::kZeroOffload,
                               dl::t5_large(), 4, cal);
  EXPECT_LT(teco.span_end(), base.span_end());
}

SessionConfig update_config() {
  SessionConfig cfg;
  cfg.protocol = coherence::Protocol::kUpdate;
  cfg.dba_enabled = true;
  cfg.act_aft_steps = 2;
  cfg.dirty_bytes = 2;
  cfg.enable_trace = true;
  return cfg;
}

TEST(Session, ParameterWriteVisibleOnDevice) {
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 256);
  std::vector<float> vals = {1.0f, 2.0f, 3.0f, 4.0f};
  s.cpu_write_parameters(params, vals);
  s.optimizer_step_complete();
  const auto dev = s.device_read_parameters(params, 4);
  EXPECT_EQ(dev, vals);
  EXPECT_GT(s.stats().update_pushes, 0u);
}

TEST(Session, GradientRoundTrip) {
  Session s(update_config());
  const auto grads = s.allocate_gradients("g", 256);
  std::vector<float> vals = {-1.0f, 0.5f};
  s.device_write_gradients(grads, vals);
  s.backward_complete();
  const auto cpu = s.cpu_read_gradients(grads, 2);
  EXPECT_EQ(cpu, vals);
}

TEST(Session, CheckActivationFollowsActAftSteps) {
  Session s(update_config());
  EXPECT_FALSE(s.check_activation(0));
  EXPECT_FALSE(s.check_activation(1));
  EXPECT_TRUE(s.check_activation(2));   // act_aft_steps = 2.
  EXPECT_TRUE(s.check_activation(3));   // Stays on.
  EXPECT_TRUE(s.dba_active());
}

TEST(Session, DbaDisabledNeverActivates) {
  auto cfg = update_config();
  cfg.dba_enabled = false;
  Session s(cfg);
  EXPECT_FALSE(s.check_activation(100000));
}

TEST(Session, DbaSpliceObservableOnDevice) {
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 64);
  // Step 0-1: full precision.
  s.cpu_write_parameters(params, std::vector<float>{1.0f});
  s.optimizer_step_complete();
  s.check_activation(5);  // Activates DBA (>= 2).
  ASSERT_TRUE(s.dba_active());
  // Update that moves high bytes: device must see the splice.
  s.cpu_write_parameters(params, std::vector<float>{2.0f});
  s.optimizer_step_complete();
  const auto dev = s.device_read_parameters(params, 1);
  EXPECT_FLOAT_EQ(dev[0], dba::splice_f32(1.0f, 2.0f, 2));
  EXPECT_NE(dev[0], 2.0f);
  // A low-byte-only update transfers losslessly.
  std::uint32_t bits;
  float cur = 2.0f;  // CPU master's latest value.
  std::memcpy(&bits, &cur, 4);
  bits += 3;
  float nudged;
  std::memcpy(&nudged, &bits, 4);
  s.cpu_write_parameters(params, std::vector<float>{nudged});
  s.optimizer_step_complete();
  const auto dev2 = s.device_read_parameters(params, 1);
  std::uint32_t dev_bits;
  std::memcpy(&dev_bits, &dev2[0], 4);
  std::uint32_t want_bits;
  const float want = dba::splice_f32(dev[0], nudged, 2);
  std::memcpy(&want_bits, &want, 4);
  EXPECT_EQ(dev_bits, want_bits);
}

TEST(Session, FencesAdvanceTime) {
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 4096);
  std::vector<float> vals(1024, 1.0f);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  s.cpu_write_parameters(params, vals);
  const auto t = s.optimizer_step_complete();
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(s.now(), t);
}

TEST(Session, InvalidationModeDemandFetches) {
  SessionConfig cfg;
  cfg.protocol = coherence::Protocol::kInvalidation;
  cfg.dba_enabled = false;
  Session s(cfg);
  const auto params = s.allocate_parameters("w", 256);
  s.cpu_write_parameters(params, std::vector<float>{9.0f, 8.0f});
  const auto before = s.now();
  const auto dev = s.device_read_parameters(params, 2);
  EXPECT_FLOAT_EQ(dev[0], 9.0f);
  EXPECT_FLOAT_EQ(dev[1], 8.0f);
  EXPECT_GT(s.now(), before);            // Demand fetch cost time.
  EXPECT_GT(s.stats().demand_fetches, 0u);
  EXPECT_EQ(s.stats().update_pushes, 0u);
}

TEST(Session, UpdateModeAvoidsDemandFetches) {
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 256);
  s.cpu_write_parameters(params, std::vector<float>{1.0f});
  s.optimizer_step_complete();
  s.device_read_parameters(params, 1);
  EXPECT_EQ(s.stats().demand_fetches, 0u);
}

TEST(Session, TraceCapturesProtocolEvents) {
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 64);
  s.cpu_write_parameters(params, std::vector<float>{1.0f});
  EXPECT_FALSE(s.trace().records().empty());
}

TEST(Session, GiantCacheCapacityEnforced) {
  SessionConfig cfg;
  cfg.giant_cache_capacity = 128;  // Two lines only.
  Session s(cfg);
  s.allocate_parameters("a", 128);
  EXPECT_THROW(s.allocate_parameters("b", 64), std::length_error);
}

TEST(Session, ListingOneTrainingLoop) {
  // The full Listing-1 shape: N steps of backward/check/step with real
  // values flowing through the coherent domain.
  Session s(update_config());
  const auto params = s.allocate_parameters("w", 1024);
  const auto grads = s.allocate_gradients("g", 1024);
  std::vector<float> p(256, 1.0f), g(256, 0.0f);
  for (std::size_t step = 0; step < 5; ++step) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = 0.01f * static_cast<float>(step);
    }
    s.device_write_gradients(grads, g);
    s.backward_complete();
    s.check_activation(step);
    for (auto& v : p) v -= 0.001f;
    s.cpu_write_parameters(params, p);
    s.optimizer_step_complete();
  }
  EXPECT_TRUE(s.dba_active());
  const auto dev = s.device_read_parameters(params, 256);
  // DBA staleness is bounded: the device copy can lag the CPU master by at
  // most one upper-byte quantum (~2^-8 relative for values near 1.0),
  // because only the low two bytes of each update cross the link.
  EXPECT_NEAR(dev[0], p[0], 0.005f);
  EXPECT_EQ(s.stats().demand_fetches, 0u);
  EXPECT_EQ(s.link().message_counts().get("Invalidate"), 0u);
}

TEST(SessionTelemetry, StepMetricsAndSnapshotsAccrue) {
  Session s(update_config());
  struct CapturingSink final : obs::StepSink {
    std::vector<obs::StepSnapshot> snaps;
    void on_step(const obs::StepSnapshot& snap) override {
      snaps.push_back(snap);
    }
  };
  CapturingSink sink;
  s.step_publisher().add_sink(&sink);

  const auto params = s.allocate_parameters("w", 1024);
  std::vector<float> p(256, 1.0f);
  for (std::size_t step = 0; step < 3; ++step) {
    for (auto& v : p) v -= 0.001f;
    s.cpu_write_parameters(params, p);
    s.backward_complete();
    s.optimizer_step_complete();
  }
  EXPECT_EQ(s.steps_completed(), 3u);
  ASSERT_EQ(sink.snaps.size(), 3u);
  EXPECT_EQ(sink.snaps[2].step, 2u);
  // The link counters and step timing landed in the session registry
  // (recording is compiled out under TECO_OBS=OFF).
#ifndef TECO_OBS_DISABLED
  EXPECT_GT(s.metrics().value("coherence.m2s.msgs"), 0.0);
  EXPECT_GT(s.metrics().value("cxl.down.bytes"), 0.0);
  EXPECT_GT(s.metrics().value("step.total_us"), 0.0);
  EXPECT_GT(s.metrics().value("step.fence_drain_us"), 0.0);
#endif
  // Fence drains emit spans plus one span per completed step.
  std::size_t step_spans = 0;
  for (const auto& e : s.spans().events()) {
    if (e.lane == "step") ++step_spans;
  }
  EXPECT_EQ(step_spans, 3u);
  // Snapshot deltas sum to the registry total for a monotone counter.
  double sum = 0.0;
  for (const auto& snap : sink.snaps) {
    for (const auto& d : snap.deltas) {
      if (d.name == "step.total_us") sum += d.value;
    }
  }
  EXPECT_DOUBLE_EQ(sum, s.metrics().value("step.total_us"));
}

TEST(SessionTelemetry, JsonlAndTraceFilesWritten) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "teco_obs_test.jsonl";
  const std::string trace = dir + "teco_obs_test_trace.json";
  {
    auto cfg = update_config();
    cfg.obs_jsonl_path = jsonl;
    cfg.obs_trace_path = trace;
    Session s(cfg);
    const auto params = s.allocate_parameters("w", 256);
    std::vector<float> p(64, 2.0f);
    s.cpu_write_parameters(params, p);
    s.backward_complete();
    s.optimizer_step_complete();
  }  // ~Session writes the unified trace.
  std::ifstream jf(jsonl);
  ASSERT_TRUE(jf.good());
  std::string line;
  ASSERT_TRUE(std::getline(jf, line));
  EXPECT_NE(line.find("\"step\":0"), std::string::npos);
  EXPECT_NE(line.find("cxl.down.bytes"), std::string::npos);
  std::ifstream tf(trace);
  ASSERT_TRUE(tf.good());
  std::stringstream buf;
  buf << tf.rdbuf();
  EXPECT_NE(buf.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(buf.str().find("step 0"), std::string::npos);
}

TEST(SessionAllocator, RejectsZeroByteRegions) {
  Session s;
  EXPECT_THROW(s.allocate_parameters("empty", 0), std::invalid_argument);
  EXPECT_THROW(s.allocate_gradients("empty", 0), std::invalid_argument);
}

TEST(SessionAllocator, RejectsAbsurdSizes) {
  Session s;
  EXPECT_THROW(s.allocate_parameters("galaxy", 1ull << 62),
               std::length_error);
}

TEST(SessionAllocator, FailsLoudlyOnAddressSpaceExhaustion) {
  // Shrink the decode window so exhaustion is reachable with small maps:
  // 1 MiB of allocatable space above the allocator's base.
  SessionConfig cfg;
  cfg.addr_space_bytes = 0x1000'0000ull + (1ull << 20);
  Session s(cfg);
  s.allocate_parameters("a", 512ull << 10);
  s.allocate_parameters("b", 512ull << 10);  // Window now exactly full.
  try {
    s.allocate_parameters("c", 64);
    FAIL() << "expected address-space exhaustion";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'c'"), std::string::npos);
  }
}

TEST(SessionAllocator, KeepsLineAlignmentAcrossOddSizes) {
  Session s;
  const auto a = s.allocate_parameters("odd", 65);  // Rounds to two lines.
  const auto b = s.allocate_gradients("next", 1);
  EXPECT_EQ(a % mem::kLineBytes, 0u);
  EXPECT_EQ(b % mem::kLineBytes, 0u);
  EXPECT_EQ(b - a, 2 * mem::kLineBytes);
}

}  // namespace
}  // namespace teco::core
