// Numeric tests: tensors, backprop, Adam, byte stats, DBA training harness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dl/adam.hpp"
#include "dl/byte_stats.hpp"
#include "dl/dba_training.hpp"
#include "dl/mlp.hpp"
#include "dl/model_zoo.hpp"
#include "dl/synthetic_data.hpp"
#include "dl/tensor.hpp"

namespace teco::dl {
namespace {

TEST(Tensor, BasicAccess) {
  Tensor t(2, 3);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_EQ(t.size(), 6u);
  t.fill(1.0f);
  for (const float v : t.flat()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Tensor, RandnMoments) {
  sim::Rng rng(1);
  const Tensor t = Tensor::randn(100, 100, rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (const float v : t.flat()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / t.size();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / t.size() - mean * mean), 2.0, 0.05);
}

TEST(Linear, ForwardMatchesHandComputed) {
  Tensor x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 2.0f;
  const std::vector<float> w = {3.0f, 4.0f, 5.0f, 6.0f};  // [2,2] rows.
  const std::vector<float> b = {0.5f, -0.5f};
  Tensor out(1, 2);
  linear_forward(x, w, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1 * 3 + 2 * 4 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 1 * 5 + 2 * 6 - 0.5f);
}

TEST(Mlp, GradientsMatchFiniteDifferences) {
  MlpConfig cfg;
  cfg.layer_sizes = {3, 5, 2};
  cfg.output = OutputKind::kRegression;
  cfg.seed = 9;
  Mlp net(cfg);

  sim::Rng rng(4);
  const Tensor x = Tensor::randn(4, 3, rng, 1.0f);
  Tensor y = Tensor::randn(4, 2, rng, 1.0f);

  net.forward(x);
  net.backward(y);
  const std::vector<float> analytic(net.grads().begin(), net.grads().end());

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < net.n_params(); i += 7) {  // Sample params.
    const float orig = net.params()[i];
    net.params()[i] = orig + eps;
    net.forward(x);
    const float lp = net.backward(y);
    net.params()[i] = orig - eps;
    net.forward(x);
    const float lm = net.backward(y);
    net.params()[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 5e-3f) << "param " << i;
  }
}

TEST(Mlp, ClassificationGradCheck) {
  MlpConfig cfg;
  cfg.layer_sizes = {4, 6, 3};
  cfg.output = OutputKind::kClassification;
  cfg.seed = 2;
  Mlp net(cfg);
  sim::Rng rng(5);
  const Tensor x = Tensor::randn(5, 4, rng, 1.0f);
  Tensor y(5, 1);
  for (int i = 0; i < 5; ++i) y.at(i, 0) = static_cast<float>(i % 3);

  net.forward(x);
  net.backward(y);
  const std::vector<float> analytic(net.grads().begin(), net.grads().end());

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < net.n_params(); i += 11) {
    const float orig = net.params()[i];
    net.params()[i] = orig + eps;
    net.forward(x);
    const float lp = net.backward(y);
    net.params()[i] = orig - eps;
    net.forward(x);
    const float lm = net.backward(y);
    net.params()[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 5e-3f) << "param " << i;
  }
}

TEST(Mlp, RejectsTinyConfigs) {
  MlpConfig cfg;
  cfg.layer_sizes = {4};
  EXPECT_THROW(Mlp{cfg}, std::invalid_argument);
}

TEST(Mlp, AccuracyComputation) {
  MlpConfig cfg;
  cfg.layer_sizes = {2, 2};
  cfg.output = OutputKind::kClassification;
  Mlp net(cfg);
  // Force identity-ish weights so argmax == input argmax.
  auto p = net.params();
  p[0] = 10.0f; p[1] = 0.0f; p[2] = 0.0f; p[3] = 10.0f;  // W.
  Tensor x(2, 2);
  x.at(0, 0) = 1.0f;
  x.at(1, 1) = 1.0f;
  Tensor y(2, 1);
  y.at(0, 0) = 0.0f;
  y.at(1, 0) = 1.0f;
  net.forward(x);
  EXPECT_FLOAT_EQ(net.accuracy(y), 1.0f);
  y.at(0, 0) = 1.0f;  // Now half wrong.
  EXPECT_FLOAT_EQ(net.accuracy(y), 0.5f);
}

TEST(Adam, MatchesScalarReference) {
  AdamConfig cfg;
  cfg.lr = 0.1f;
  cfg.grad_clip_norm = 0.0f;  // Disable.
  Adam opt(1, cfg);
  std::vector<float> p = {1.0f};
  const std::vector<float> g = {0.5f};
  opt.step(p, g);
  // t=1: m=0.05, v=0.00025/... bias-corrected mhat=0.5, vhat=0.25.
  const float expected = 1.0f - 0.1f * 0.5f / (std::sqrt(0.25f) + 1e-8f);
  EXPECT_NEAR(p[0], expected, 1e-6f);
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(Adam, ClippingScalesToNorm) {
  Adam opt(2, AdamConfig{.grad_clip_norm = 1.0f});
  std::vector<float> g = {3.0f, 4.0f};  // Norm 5.
  const float pre = opt.clip_gradients(g);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(std::hypot(g[0], g[1]), 1.0f, 1e-6f);
  std::vector<float> small = {0.3f, 0.4f};
  opt.clip_gradients(small);
  EXPECT_FLOAT_EQ(small[0], 0.3f);  // Under the norm: untouched.
}

TEST(Adam, SizeMismatchThrows) {
  Adam opt(4);
  std::vector<float> p(4), g(3);
  EXPECT_THROW(opt.step(p, g), std::invalid_argument);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  AdamConfig cfg;
  cfg.weight_decay = 0.1f;
  cfg.grad_clip_norm = 0.0f;
  Adam opt(1, cfg);
  std::vector<float> p = {5.0f};
  const std::vector<float> g = {0.0f};
  opt.step(p, g);
  EXPECT_LT(p[0], 5.0f);
}

TEST(ByteStats, ClassifiesCases) {
  auto bump = [](float v, std::uint32_t delta) {
    std::uint32_t b;
    std::memcpy(&b, &v, 4);
    b ^= delta;
    float out;
    std::memcpy(&out, &b, 4);
    return out;
  };
  const float base = 1.234f;
  EXPECT_EQ(classify_change(base, base), ByteChangeCase::kUnchanged);
  EXPECT_EQ(classify_change(base, bump(base, 0x01)),
            ByteChangeCase::kLastByteOnly);
  EXPECT_EQ(classify_change(base, bump(base, 0x0100)),
            ByteChangeCase::kLastTwoBytes);
  EXPECT_EQ(classify_change(base, bump(base, 0x0101)),
            ByteChangeCase::kLastTwoBytes);
  EXPECT_EQ(classify_change(base, bump(base, 0x010000)),
            ByteChangeCase::kOther);
  EXPECT_EQ(classify_change(base, bump(base, 0x80000000)),
            ByteChangeCase::kOther);
}

TEST(ByteStats, ArrayAggregation) {
  const std::vector<float> prev = {1.0f, 2.0f, 3.0f};
  std::vector<float> curr = prev;
  std::uint32_t b;
  std::memcpy(&b, &curr[1], 4);
  b ^= 0x7;
  std::memcpy(&curr[1], &b, 4);
  const auto s = compare_arrays(prev, curr);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.unchanged, 2u);
  EXPECT_EQ(s.last_byte_only, 1u);
  EXPECT_EQ(s.changed(), 1u);
  EXPECT_DOUBLE_EQ(s.frac_case1(), 1.0);
  EXPECT_DOUBLE_EQ(s.frac_unchanged(), 2.0 / 3.0);
  EXPECT_THROW(compare_arrays(prev, std::vector<float>(2)),
               std::invalid_argument);
}

TEST(ModelZoo, TableIIIConfigs) {
  const auto models = table3_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name, "GPT2");
  EXPECT_EQ(models[0].n_params, 122'000'000u);
  EXPECT_EQ(models[2].name, "Bert-large-cased");
  EXPECT_EQ(models[2].n_layers, 24u);
  EXPECT_EQ(models[3].n_params, 737'000'000u);
  EXPECT_TRUE(models[4].full_graph_only);
  EXPECT_EQ(models[3].giant_cache_bytes, 2069ull * 1024 * 1024);
  EXPECT_EQ(model_by_name("T5-large").name, "T5-large");
  EXPECT_EQ(model_by_name("GPT2-11B").n_params, 11'000'000'000u);
  EXPECT_THROW(model_by_name("nope"), std::out_of_range);
}

TEST(ModelZoo, DerivedSizes) {
  const auto bert = bert_large_cased();
  EXPECT_EQ(bert.param_bytes(), bert.n_params * 4);
  EXPECT_EQ(bert.gradient_bytes(), bert.param_bytes());
  EXPECT_GT(bert.gradient_buffer_bytes(), 0u);
  EXPECT_LE(bert.gradient_buffer_bytes(), 256ull * 1024 * 1024);
}

TEST(ModelZoo, GiantCacheSizingMatchesTableIII) {
  // Table III reports the configured giant-cache size per model; our
  // derived requirement (FP16 params + gradient buffer) must land within
  // 15 % for every model — evidence the sizing rule is the paper's.
  for (const auto& m : table3_models()) {
    const double required = static_cast<double>(m.giant_cache_requirement());
    const double reported = static_cast<double>(m.giant_cache_bytes);
    EXPECT_NEAR(required / reported, 1.0, 0.15) << m.name;
  }
}

TEST(SyntheticData, Deterministic) {
  const auto task = make_classification_task(13);
  sim::Rng r1(5), r2(5);
  const auto& t = std::get<ClassificationTask>(task);
  const auto b1 = t.sample(8, r1);
  const auto b2 = t.sample(8, r2);
  for (std::size_t i = 0; i < b1.inputs.size(); ++i) {
    EXPECT_FLOAT_EQ(b1.inputs.flat()[i], b2.inputs.flat()[i]);
  }
}

TEST(Training, LossDecreases) {
  const auto task = make_regression_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 300;
  cfg.batch_size = 16;
  const auto res = run_training(task, cfg);
  ASSERT_GE(res.loss_curve.size(), 2u);
  EXPECT_LT(res.loss_curve.back(), res.loss_curve.front() * 0.5f);
}

TEST(Training, ClassifierLearns) {
  const auto task = make_classification_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 400;
  cfg.batch_size = 32;
  const auto res = run_training(task, cfg);
  EXPECT_GT(res.final_metric, 0.7f);  // 10 classes; chance = 0.1.
}

TEST(Training, ParamChangesConcentrateInLowBytes) {
  // Fig. 2(a): during fine-tuning most changed parameters change only
  // their least significant bytes; gradients show no such pattern (2(b)).
  const auto task = make_regression_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 800;
  cfg.batch_size = 16;
  cfg.adam.lr = 2e-4f;  // Fine-tuning-scale updates.
  const auto res = run_training(task, cfg);
  const auto& p = res.aggregate_param_changes;
  const auto& g = res.aggregate_grad_changes;
  EXPECT_GT(p.frac_low2_covered(), 0.5);
  EXPECT_GT(p.frac_low2_covered(), g.frac_low2_covered());
}

TEST(Training, DbaMatchesExactTrainingQuality) {
  // Table V / Fig. 10: TECO-Reduction leaves convergence essentially
  // unchanged when activated after warm-up.
  const auto task = make_classification_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 600;
  cfg.batch_size = 32;
  cfg.record_every = 20;

  auto exact_cfg = cfg;
  const auto exact = run_training(task, exact_cfg);

  auto dba_cfg = cfg;
  dba_cfg.dba_enabled = true;
  dba_cfg.act_aft_steps = 300;
  const auto dba = run_training(task, dba_cfg);

  EXPECT_EQ(dba.dba_active_steps, 300u);
  EXPECT_NEAR(dba.final_metric, exact.final_metric, 0.08f);
  EXPECT_NEAR(dba.final_eval_loss, exact.final_eval_loss,
              0.3f * std::abs(exact.final_eval_loss) + 0.1f);
}

TEST(Training, EarlyDbaActivationHurtsMore) {
  // Fig. 13: activating DBA from step 0 degrades the metric more than
  // activating after warm-up.
  const auto task = make_regression_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 600;
  cfg.batch_size = 16;

  auto exact = cfg;
  const float exact_loss = run_training(task, exact).final_eval_loss;

  auto early = cfg;
  early.dba_enabled = true;
  early.act_aft_steps = 0;
  const float early_loss = run_training(task, early).final_eval_loss;

  auto late = cfg;
  late.dba_enabled = true;
  late.act_aft_steps = 400;
  const float late_loss = run_training(task, late).final_eval_loss;

  EXPECT_LE(std::abs(late_loss - exact_loss),
            std::abs(early_loss - exact_loss) + 1e-4f);
}

TEST(Training, DirtyBytes4IsExact) {
  const auto task = make_regression_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 100;
  cfg.batch_size = 8;
  auto exact = cfg;
  auto dba4 = cfg;
  dba4.dba_enabled = true;
  dba4.act_aft_steps = 0;
  dba4.dirty_bytes = 4;
  const auto a = run_training(task, exact);
  const auto b = run_training(task, dba4);
  EXPECT_FLOAT_EQ(a.final_eval_loss, b.final_eval_loss);
}

}  // namespace
}  // namespace teco::dl
