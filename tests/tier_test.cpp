// teco::tier — lifetime profiling, placement planning, migration
// scheduling, and the tier_* config surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/tier_checker.hpp"
#include "core/config.hpp"
#include "core/gantt.hpp"
#include "core/session.hpp"
#include "core/trace_export.hpp"
#include "dl/model_zoo.hpp"
#include "offload/activation_timeline.hpp"
#include "offload/calibration.hpp"
#include "tier/lifetime_profiler.hpp"
#include "tier/migration_scheduler.hpp"
#include "tier/placement_planner.hpp"

namespace {

using namespace teco;

constexpr std::uint64_t kGiB = 1ull << 30;

/// A hand-built 3-layer step: forward 3 s (1 s/layer), backward 6 s
/// (2 s/layer). Weights 1 GiB/layer read once per pass; activations
/// 2 GiB/layer produced at forward layer end, consumed by backward in
/// reverse order.
tier::StepProfile hand_profile() {
  tier::TensorLifetimeProfiler p;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto id = p.on_produce("w" + std::to_string(i),
                                 tier::TensorClass::kWeight, i, kGiB, 0.0);
    p.on_consume(id, 1.0 * i);
    p.on_consume(id, 3.0 + 2.0 * (2 - i));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto id =
        p.on_produce("a" + std::to_string(i), tier::TensorClass::kActivation,
                     i, 2 * kGiB, 1.0 * (i + 1));
    p.on_consume(id, 3.0 + 2.0 * (2 - i));
  }
  return p.finish(3.0, 6.0, 3);
}

TEST(LifetimeProfiler, RecordsIntervalsOnHandBuiltModel) {
  const auto prof = hand_profile();
  ASSERT_EQ(prof.tensors.size(), 6u);

  // w0: consumed at fwd L0 (t=0) and bwd L0 (t=3+4=7).
  const auto& w0 = prof.tensors[0];
  EXPECT_EQ(w0.cls, tier::TensorClass::kWeight);
  ASSERT_EQ(w0.consumes.size(), 2u);
  EXPECT_DOUBLE_EQ(w0.consumes[0], 0.0);
  EXPECT_DOUBLE_EQ(w0.consumes[1], 7.0);
  EXPECT_DOUBLE_EQ(w0.dead_span(), 7.0);
  EXPECT_DOUBLE_EQ(w0.last_use(), 7.0);

  // a0: produced at 1, consumed when backward reaches layer 0 at t=7.
  const auto& a0 = prof.tensors[3];
  EXPECT_EQ(a0.cls, tier::TensorClass::kActivation);
  EXPECT_DOUBLE_EQ(a0.produce, 1.0);
  ASSERT_EQ(a0.consumes.size(), 1u);
  EXPECT_DOUBLE_EQ(a0.consumes[0], 7.0);
  EXPECT_DOUBLE_EQ(a0.dead_span(), 6.0);

  // a2: produced at forward end, consumed immediately by backward.
  const auto& a2 = prof.tensors[5];
  EXPECT_DOUBLE_EQ(a2.produce, 3.0);
  EXPECT_DOUBLE_EQ(a2.first_consume(), 3.0);
  EXPECT_DOUBLE_EQ(a2.dead_span(), 0.0);
}

TEST(LifetimeProfiler, PeakLiveBytesSweep) {
  const auto prof = hand_profile();
  // Peak hits at t=2: all 3 weights (3 GiB) + a0 + a1 (4 GiB). At t=3 the
  // sweep frees w2 and the zero-lifetime a2 before allocating, so the
  // forward-end spike never exceeds it.
  EXPECT_EQ(prof.peak_live_bytes(), 7 * kGiB);
}

TEST(LifetimeProfiler, ConsumeUnknownIdThrows) {
  tier::TensorLifetimeProfiler p;
  EXPECT_THROW(p.on_consume(7, 1.0), std::out_of_range);
}

TEST(LifetimeProfiler, CanonicalStepProfileShape) {
  const auto& cal = offload::default_calibration();
  const auto m = dl::gpt2();
  const auto prof = tier::profile_step(m, 8, cal);
  ASSERT_EQ(prof.tensors.size(), 2u * m.n_layers);
  EXPECT_EQ(prof.total_bytes(tier::TensorClass::kWeight),
            m.n_params * 2 / m.n_layers * m.n_layers);
  // Activations are consumed in reverse layer order during backward.
  const auto& first = prof.tensors[m.n_layers];      // act layer 0
  const auto& last = prof.tensors[2 * m.n_layers - 1];  // act layer L-1
  EXPECT_GT(first.consumes.front(), last.consumes.front());
}

TEST(PlacementPlanner, AllHbmDegeneratesToZeroMigrations) {
  const auto prof = hand_profile();
  tier::PlannerConfig cfg;
  cfg.policy = tier::Policy::kAllHbm;
  cfg.hbm_bytes = 64 * kGiB;
  const tier::PlacementPlanner planner(cfg,
                                       offload::default_calibration());
  const auto plan = planner.plan(prof);
  EXPECT_TRUE(plan.hbm_feasible);
  EXPECT_TRUE(plan.migrations.empty());
  EXPECT_TRUE(std::all_of(plan.home.begin(), plan.home.end(),
                          [](tier::Tier t) { return t == tier::Tier::kHbm; }));
}

TEST(PlacementPlanner, LargeBudgetNeedsNoEvictions) {
  const auto prof = hand_profile();
  for (const auto pol : {tier::Policy::kMinStall, tier::Policy::kKnapsack}) {
    tier::PlannerConfig cfg;
    cfg.policy = pol;
    cfg.hbm_bytes = 64 * kGiB;
    const tier::PlacementPlanner planner(cfg,
                                         offload::default_calibration());
    const auto plan = planner.plan(prof);
    EXPECT_TRUE(plan.hbm_feasible);
    EXPECT_EQ(plan.planned_offload_bytes, 0u);
    EXPECT_TRUE(plan.migrations.empty());
  }
}

TEST(PlacementPlanner, PlanFitsHbmBudget) {
  const auto prof = hand_profile();
  for (const auto pol : {tier::Policy::kMinStall, tier::Policy::kKnapsack}) {
    tier::PlannerConfig cfg;
    cfg.policy = pol;
    cfg.hbm_bytes = 5 * kGiB;  // peak is 7 GiB.
    const tier::PlacementPlanner planner(cfg,
                                         offload::default_calibration());
    const auto plan = planner.plan(prof);
    EXPECT_FALSE(plan.hbm_feasible);
    EXPECT_LE(plan.planned_hbm_peak, cfg.hbm_bytes);
    EXPECT_GE(plan.planned_offload_bytes, 2 * kGiB);
  }
}

TEST(PlacementPlanner, PolicyStringsRoundTrip) {
  for (const auto pol : {tier::Policy::kAllHbm, tier::Policy::kNaiveSwap,
                         tier::Policy::kMinStall, tier::Policy::kKnapsack}) {
    const auto parsed = tier::policy_from_string(tier::to_string(pol));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pol);
  }
  EXPECT_FALSE(tier::policy_from_string("lru").has_value());
}

/// Run the full timeline for gpt2 at the given policy/budget with a strict
/// checker attached.
offload::ActivationStepReport run_step(tier::Policy pol, std::uint64_t hbm,
                                       std::uint32_t seq_len = 4096) {
  auto m = dl::gpt2();
  m.seq_len = seq_len;
  offload::ActivationTimelineOptions opts;
  opts.policy = pol;
  opts.hbm_bytes = hbm;
  opts.giant_cache_bytes = 4 * kGiB;
  check::TierInvariantChecker checker(check::CheckLevel::kStrict, 0);
  opts.observer = &checker;
  auto r = offload::simulate_activation_step(
      m, 8, offload::default_calibration(), opts);
  EXPECT_EQ(checker.violations(), 0u) << "policy " << tier::to_string(pol);
  EXPECT_GT(checker.accesses_checked(), 0u);
  return r;
}

TEST(MigrationScheduler, AllHbmHasNoTrafficOrStall) {
  const auto r = run_step(tier::Policy::kAllHbm, 64 * kGiB, 1024);
  EXPECT_EQ(r.sched.stall_time, 0.0);
  EXPECT_EQ(r.migrated_bytes(), 0u);
  EXPECT_TRUE(r.sched.transfers.empty());
}

TEST(MigrationScheduler, PrefetchLandsBeforeOrAtConsumeOrStallCharged) {
  const auto r = run_step(tier::Policy::kMinStall, 16 * kGiB);
#ifndef TECO_OBS_DISABLED
  EXPECT_GT(r.sched.metric("tier.prefetches"), 0.0);
#endif
  // Every prefetch/evict pair for one tensor must be ordered: the fetch
  // back to HBM starts no earlier than the eviction that parked it.
  for (const auto& t : r.sched.transfers) {
    EXPECT_GE(t.end, t.start);
  }
  // The strict checker (attached in run_step) enforced T1/T2 already; a
  // zero-stall run would mean every fetch was fully hidden.
  EXPECT_GE(r.sched.stall_time, 0.0);
}

TEST(MigrationScheduler, EvictionPrecedesRefetchPerTensor) {
  const auto r = run_step(tier::Policy::kMinStall, 16 * kGiB);
  // For each activation tensor: first HBM-outbound transfer must precede
  // any inbound fetch of the same tensor.
  std::vector<sim::Time> first_evict(r.profile.tensors.size(), -1.0);
  std::vector<sim::Time> first_fetch(r.profile.tensors.size(), -1.0);
  for (const auto& t : r.sched.transfers) {
    auto& slot = t.to == tier::Tier::kHbm ? first_fetch[t.tensor]
                                          : first_evict[t.tensor];
    if (slot < 0.0) slot = t.start;
  }
  for (std::size_t i = 0; i < r.profile.tensors.size(); ++i) {
    if (r.profile.tensors[i].cls != tier::TensorClass::kActivation) continue;
    if (first_fetch[i] < 0.0) continue;
    ASSERT_GE(first_evict[i], 0.0) << "fetch without prior eviction";
    EXPECT_LE(first_evict[i], first_fetch[i]);
  }
}

TEST(MigrationScheduler, StallMonotoneNonIncreasingInBudget) {
  for (const auto pol : {tier::Policy::kMinStall, tier::Policy::kKnapsack}) {
    double prev = -1.0;
    for (const std::uint64_t hbm :
         {8 * kGiB, 16 * kGiB, 24 * kGiB, 64 * kGiB}) {
      const auto r = run_step(pol, hbm);
      if (prev >= 0.0) {
        EXPECT_LE(r.sched.stall_time, prev + 1e-9)
            << tier::to_string(pol) << " at " << hbm / kGiB << " GiB";
      }
      prev = r.sched.stall_time;
    }
  }
}

TEST(ActivationTimeline, PlannedPoliciesBeatNaiveWhereAllHbmOoms) {
  const auto naive = run_step(tier::Policy::kNaiveSwap, 16 * kGiB);
  const auto planned = run_step(tier::Policy::kMinStall, 16 * kGiB);
  EXPECT_TRUE(naive.hbm_oom);  // The corrected check flags all-HBM.
  ASSERT_GT(naive.sched.stall_time, 0.0);
  // The acceptance bar: >= 25 % less stall than synchronous swapping.
  EXPECT_LE(planned.sched.stall_time, 0.75 * naive.sched.stall_time);
  EXPECT_LT(planned.step_total, naive.step_total);
}

TEST(ActivationTimeline, CorrectedMemoryCheckTracksSeqLen) {
  const auto m = dl::gpt2();
  // Short sequences fit; long sequences push the same model OOM.
  const auto short_chk =
      offload::check_gpu_memory(m, 8, 30ull << 30, false);
  EXPECT_TRUE(short_chk.fits);
  auto long_m = m;
  long_m.seq_len = 8192;
  const auto long_chk =
      offload::check_gpu_memory(long_m, 8, 30ull << 30, false);
  EXPECT_FALSE(long_chk.fits);
  EXPECT_GT(long_chk.activation_bytes, short_chk.activation_bytes);
  // fits_on_gpu delegates to the same accounting.
  EXPECT_TRUE(offload::fits_on_gpu(m, 8));
  EXPECT_FALSE(offload::fits_on_gpu(long_m, 8));
}

TEST(TierChecker, StrictModeThrowsOnBadMigration) {
  check::TierInvariantChecker chk(check::CheckLevel::kStrict, 0);
  EXPECT_THROW(chk.on_tier_migration(1.0, 0, 0, 0, 64, 2.0, false),
               check::TierViolation);  // T4: same tier.
  check::TierInvariantChecker count(check::CheckLevel::kCount, 0);
  count.on_tier_migration(1.0, 0, 0, 0, 64, 2.0, false);
  count.on_tier_migration(1.0, 1, 0, 2, 0, 2.0, false);   // T4: zero bytes.
  count.on_tier_migration(3.0, 2, 0, 2, 64, 2.0, false);  // T4: time warp.
  EXPECT_EQ(count.violations(), 3u);
}

TEST(TierChecker, ResidencyAndDeadlineInvariants) {
  check::TierInvariantChecker chk(check::CheckLevel::kStrict, 0);
  // T1: consume from lower tier with no stall.
  EXPECT_THROW(chk.on_tier_access(1.0, 0, 2, false, 0.0),
               check::TierViolation);
  // T2: access before a recorded prefetch delivery without covering stall.
  check::TierInvariantChecker chk2(check::CheckLevel::kStrict, 0);
  chk2.on_tier_migration(0.0, 5, 2, 0, 64, 10.0, true);
  EXPECT_THROW(chk2.on_tier_access(1.0, 5, 2, false, 2.0),
               check::TierViolation);
  // Same access with a stall that covers delivery is fine.
  check::TierInvariantChecker chk3(check::CheckLevel::kStrict, 0);
  chk3.on_tier_migration(0.0, 5, 2, 0, 64, 10.0, true);
  chk3.on_tier_access(1.0, 5, 2, false, 9.0);
  EXPECT_EQ(chk3.violations(), 0u);
  // T3: capacity.
  check::TierInvariantChecker chk4(check::CheckLevel::kStrict, 100);
  EXPECT_THROW(chk4.on_tier_occupancy(0.0, 0, 101), check::TierViolation);
  chk4.on_tier_occupancy(0.0, 1, 1000);  // Other tiers unconstrained.
}

TEST(TierConfig, ParsesTierKeys) {
  const auto p = core::parse_config(
      "tier_policy = knapsack\n"
      "tier_hbm_bytes = 17179869184\n"
      "tier_prefetch_depth = 4\n");
  ASSERT_TRUE(p.errors.empty());
  EXPECT_TRUE(p.unknown_keys.empty());
  EXPECT_EQ(p.session.tier_policy, tier::Policy::kKnapsack);
  EXPECT_EQ(p.session.tier_hbm_bytes, 16 * kGiB);
  EXPECT_EQ(p.session.tier_prefetch_depth, 4u);
  const auto cfg = core::tier_planner_config(p.session);
  EXPECT_EQ(cfg.policy, tier::Policy::kKnapsack);
  EXPECT_EQ(cfg.hbm_bytes, 16 * kGiB);
  EXPECT_EQ(cfg.prefetch_depth, 4u);
  EXPECT_EQ(cfg.giant_cache_bytes, p.session.giant_cache_capacity);
}

TEST(TierConfig, RejectsBadTierValues) {
  const auto p = core::parse_config(
      "tier_policy = lru\n"
      "tier_hbm_bytes = 0\n"
      "tier_hbm_bytes = banana\n"
      "tier_prefetch_depth = 65\n");
  ASSERT_EQ(p.errors.size(), 4u);
  EXPECT_NE(p.errors[0].find("tier_policy must be"), std::string::npos);
  EXPECT_NE(p.errors[1].find("positive integer"), std::string::npos);
  EXPECT_NE(p.errors[3].find("[0, 64]"), std::string::npos);
  // Defaults survive rejected values.
  EXPECT_EQ(p.session.tier_policy, tier::Policy::kAllHbm);
}

TEST(TierConfig, RoundTripsThroughText) {
  core::SessionConfig cfg;
  cfg.tier_policy = tier::Policy::kMinStall;
  cfg.tier_hbm_bytes = 8 * kGiB;
  cfg.tier_prefetch_depth = 7;
  const auto p = core::parse_config(core::to_config_text(cfg));
  ASSERT_TRUE(p.errors.empty());
  EXPECT_TRUE(p.unknown_keys.empty());
  EXPECT_EQ(p.session.tier_policy, cfg.tier_policy);
  EXPECT_EQ(p.session.tier_hbm_bytes, cfg.tier_hbm_bytes);
  EXPECT_EQ(p.session.tier_prefetch_depth, cfg.tier_prefetch_depth);
}

TEST(TierGantt, ActivationGanttHasOccupancyLanes) {
  // seq 4096 overflows the 16 GiB budget, so migration lanes are present.
  const auto r = run_step(tier::Policy::kMinStall, 16 * kGiB);
  const auto g = core::activation_gantt(r, 16 * kGiB, 4 * kGiB);
  const auto text = g.render(64);
  EXPECT_NE(text.find("GPU fwd"), std::string::npos);
  EXPECT_NE(text.find("occ HBM"), std::string::npos);
  EXPECT_NE(text.find("mig down"), std::string::npos);
  // Occupancy lanes carry digit glyphs.
  bool digit = false;
  for (const auto& s : g.spans()) {
    if (s.lane == "occ HBM" && s.glyph >= '0' && s.glyph <= '9') digit = true;
  }
  EXPECT_TRUE(digit);
}

TEST(TierGantt, ChromeTraceExportIsWellFormed) {
  const auto r = run_step(tier::Policy::kMinStall, 16 * kGiB, 2048);
  const auto g = core::activation_gantt(r, 16 * kGiB, 4 * kGiB);
  std::vector<core::CounterSeries> counters = {
      {"HBM bytes", r.sched.occupancy[0].points}};
  const auto json = core::to_chrome_trace_json(g, "tier step", counters);
  // Structural spot checks (no JSON parser in the test deps).
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name")"), std::string::npos);
  EXPECT_NE(json.find("tier step"), std::string::npos);
  // Balanced braces, since we hand-serialize.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
