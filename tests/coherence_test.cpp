// Protocol tests: giant cache, MESI transitions, snoop filter, home agent.
#include <gtest/gtest.h>

#include <cstring>

#include "check/protocol_checker.hpp"
#include "coherence/giant_cache.hpp"
#include "coherence/home_agent.hpp"
#include "coherence/mesi.hpp"
#include "coherence/snoop_filter.hpp"
#include "cxl/link.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "obs/metrics.hpp"

namespace teco::coherence {
namespace {

// TECO_OBS=OFF compiles metric recording to no-ops; tests asserting on
// recorded values skip (whole-test) or drop just those assertions.
#ifdef TECO_OBS_DISABLED
#define TECO_SKIP_WITHOUT_OBS() \
  GTEST_SKIP() << "telemetry recording compiled out (TECO_OBS=OFF)"
#else
#define TECO_SKIP_WITHOUT_OBS() (void)0
#endif


using mem::Addr;

constexpr Addr kParamBase = 0x1000;
constexpr std::uint64_t kParamBytes = 64 * 64;  // 64 lines.
constexpr Addr kGradBase = 0x10000;
constexpr std::uint64_t kGradBytes = 64 * 32;

struct Harness {
  explicit Harness(Protocol proto, dba::DbaRegister dba = {})
      : gc(1ull << 20), cpu_cache(mem::llc_config()), trace(true) {
    HomeAgent::Options opts;
    opts.protocol = proto;
    opts.dba = dba;
    opts.cpu_mem = &cpu_mem;
    opts.device_mem = &device_mem;
    opts.trace = &trace;
    gc.map_region("params", kParamBase, kParamBytes, MesiState::kExclusive,
                  /*dba_eligible=*/true);
    gc.map_region("grads", kGradBase, kGradBytes, MesiState::kExclusive,
                  /*dba_eligible=*/false);
    agent = std::make_unique<HomeAgent>(link, gc, cpu_cache, opts);
    // Every protocol test runs under the strict invariant checker: any
    // SWMR/transition/data/fence violation throws and fails the test.
    check::ProtocolChecker::Options copts;
    copts.cpu_mem = &cpu_mem;
    copts.device_mem = &device_mem;
    checker = std::make_unique<check::ProtocolChecker>(*agent, copts);
  }

  cxl::Link link;
  GiantCache gc;
  mem::Cache cpu_cache;
  mem::BackingStore cpu_mem, device_mem;
  sim::Trace trace;
  std::unique_ptr<HomeAgent> agent;
  std::unique_ptr<check::ProtocolChecker> checker;  ///< After agent.
};

TEST(MesiTransitions, UpdateExtensionOnlyAddsMToS) {
  using S = MesiState;
  for (const auto from : {S::kInvalid, S::kShared, S::kExclusive, S::kModified}) {
    for (const auto to : {S::kInvalid, S::kShared, S::kExclusive, S::kModified}) {
      const bool inv = legal_transition(Protocol::kInvalidation, from, to);
      const bool upd = legal_transition(Protocol::kUpdate, from, to);
      if (from == S::kModified && to == S::kShared) {
        EXPECT_FALSE(inv);
        EXPECT_TRUE(upd);  // Fig. 4's red arrow.
      } else {
        EXPECT_EQ(inv, upd) << to_string(from) << "->" << to_string(to);
      }
    }
  }
}

TEST(MesiTransitions, Names) {
  EXPECT_EQ(to_string(MesiState::kModified), "M");
  EXPECT_EQ(to_string(MesiState::kInvalid), "I");
}

TEST(GiantCache, MapAndFind) {
  GiantCache gc(1ull << 20);
  gc.map_region("p", 0, 640, MesiState::kExclusive, true);
  EXPECT_TRUE(gc.contains_line(0));
  EXPECT_TRUE(gc.contains_line(639));
  EXPECT_FALSE(gc.contains_line(640));
  EXPECT_EQ(gc.mapped_lines(), 10u);
  EXPECT_EQ(gc.state(128), MesiState::kExclusive);
  gc.set_state(128, MesiState::kShared);
  EXPECT_EQ(gc.state(128), MesiState::kShared);
  EXPECT_EQ(gc.state(64), MesiState::kExclusive);  // Neighbors untouched.
  EXPECT_EQ(gc.count_state(MesiState::kShared), 1u);
}

TEST(GiantCache, RejectsBadRegions) {
  GiantCache gc(1024);
  EXPECT_THROW(gc.map_region("x", 1, 64, MesiState::kInvalid, false),
               std::invalid_argument);  // Unaligned base.
  EXPECT_THROW(gc.map_region("x", 0, 65, MesiState::kInvalid, false),
               std::invalid_argument);  // Unaligned size.
  EXPECT_THROW(gc.map_region("x", 0, 0, MesiState::kInvalid, false),
               std::invalid_argument);
  EXPECT_THROW(gc.map_region("x", 0, 2048, MesiState::kInvalid, false),
               std::length_error);  // Over capacity.
  gc.map_region("a", 0, 512, MesiState::kInvalid, false);
  EXPECT_THROW(gc.map_region("b", 256, 512, MesiState::kInvalid, false),
               std::invalid_argument);  // Overlap.
  EXPECT_THROW((void)gc.state(0x100000), std::out_of_range);
}

TEST(SnoopFilter, SharerBookkeeping) {
  SnoopFilter sf;
  sf.add_sharer(0, Sharer::kCpu);
  sf.add_sharer(0, Sharer::kDevice);
  EXPECT_TRUE(sf.is_sharer(0, Sharer::kCpu));
  EXPECT_TRUE(sf.is_sharer(0, Sharer::kDevice));
  EXPECT_EQ(sf.entries(), 1u);
  sf.remove_sharer(0, Sharer::kCpu);
  EXPECT_FALSE(sf.is_sharer(0, Sharer::kCpu));
  sf.remove_sharer(0, Sharer::kDevice);
  EXPECT_EQ(sf.entries(), 0u);
  EXPECT_EQ(sf.peak_entries(), 1u);
  EXPECT_EQ(sf.approx_bytes(), 2u);
  sf.remove_sharer(99, Sharer::kCpu);  // No-op on absent line.
}

// --- Update protocol (the TECO extension) ---

TEST(HomeAgentUpdate, Fig5ParameterUpdateFlow) {
  Harness h(Protocol::kUpdate);
  // CPU updates a parameter line: ReadOwn (on-package), GO_Flush, push.
  const auto d = h.agent->cpu_write_line(0.0, kParamBase);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->delivered, 0.0);
  // States after the flow: Cs = S (clean), Gs = S.
  EXPECT_EQ(h.gc.state(kParamBase), MesiState::kShared);
  const auto* meta = h.cpu_cache.peek(kParamBase);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(static_cast<MesiState>(meta->state), MesiState::kShared);
  EXPECT_FALSE(meta->dirty);
  // Exactly one FlushData crossed the link; no invalidations.
  EXPECT_EQ(h.link.message_counts().get("FlushData"), 1u);
  EXPECT_EQ(h.link.message_counts().get("Invalidate"), 0u);
  EXPECT_EQ(h.agent->stats().update_pushes, 1u);
  // The trace captured the Fig. 5 sequence.
  EXPECT_EQ(h.trace.filter_event(
                "ReadOwn@" + std::to_string(kParamBase)).size(), 1u);
  EXPECT_EQ(h.trace.filter_event(
                "GO_Flush@" + std::to_string(kParamBase)).size(), 1u);
}

TEST(HomeAgentUpdate, DataMovesWithPush) {
  Harness h(Protocol::kUpdate);
  h.cpu_mem.write_f32(kParamBase, 3.25f);
  h.agent->cpu_write_line(0.0, kParamBase);
  EXPECT_FLOAT_EQ(h.device_mem.read_f32(kParamBase), 3.25f);
}

TEST(HomeAgentUpdate, DeviceReadsAreLocal) {
  Harness h(Protocol::kUpdate);
  h.agent->cpu_write_line(0.0, kParamBase);
  const auto a = h.agent->device_read_line(1.0, kParamBase);
  EXPECT_FALSE(a.crossed_link);
  EXPECT_DOUBLE_EQ(a.ready, 1.0);
  EXPECT_EQ(h.agent->stats().demand_fetches, 0u);
}

TEST(HomeAgentUpdate, FlushAllReturnsLinesToExclusive) {
  Harness h(Protocol::kUpdate);
  h.agent->cpu_write_line(0.0, kParamBase);
  h.agent->cpu_write_line(0.0, kParamBase + 64);
  EXPECT_EQ(h.agent->cpu_flush_all(1.0), 2u);
  EXPECT_EQ(h.gc.state(kParamBase), MesiState::kExclusive);
  EXPECT_EQ(h.gc.state(kParamBase + 64), MesiState::kExclusive);
  EXPECT_EQ(h.cpu_cache.peek(kParamBase), nullptr);  // Cs = I.
}

TEST(HomeAgentUpdate, GradientPushesToCpu) {
  Harness h(Protocol::kUpdate);
  h.device_mem.write_f32(kGradBase, -1.5f);
  const auto d = h.agent->device_write_line(0.0, kGradBase);
  ASSERT_TRUE(d.has_value());
  EXPECT_FLOAT_EQ(h.cpu_mem.read_f32(kGradBase), -1.5f);
  EXPECT_EQ(h.gc.state(kGradBase), MesiState::kShared);
  const auto a = h.agent->cpu_read_line(d->delivered, kGradBase);
  EXPECT_FALSE(a.crossed_link);  // Data already home.
}

TEST(HomeAgentUpdate, SnoopFilterStaysEmpty) {
  // Section IV-A2: the update protocol with clear producer/consumer roles
  // needs no snoop filter.
  Harness h(Protocol::kUpdate);
  for (int i = 0; i < 16; ++i) {
    h.agent->cpu_write_line(0.0, kParamBase + i * 64);
    h.agent->device_write_line(0.0, kGradBase + (i % 8) * 64);
  }
  EXPECT_EQ(h.agent->snoop_filter().entries(), 0u);
  EXPECT_EQ(h.agent->snoop_filter().peak_entries(), 0u);
}

TEST(HomeAgentUpdate, UnmappedLinesBypassProtocol) {
  Harness h(Protocol::kUpdate);
  EXPECT_FALSE(h.agent->cpu_write_line(0.0, 0xDEAD000).has_value());
  EXPECT_FALSE(h.agent->device_write_line(0.0, 0xDEAD000).has_value());
  EXPECT_EQ(h.link.message_counts().get("FlushData"), 0u);
}

TEST(HomeAgentUpdate, DbaTrimsParameterPushesOnly) {
  Harness h(Protocol::kUpdate);
  h.agent->set_dba(0.0, dba::DbaRegister(true, 2));
  h.agent->cpu_write_line(0.0, kParamBase);      // Trimmed: 32 B payload.
  h.agent->device_write_line(0.0, kGradBase);    // Gradients: full 64 B.
  EXPECT_EQ(h.agent->stats().dba_trimmed_lines, 1u);
  const auto& down = h.link.channel(cxl::Direction::kCpuToDevice).stats();
  const auto& up = h.link.channel(cxl::Direction::kDeviceToCpu).stats();
  // Down carried the DbaConfig control (16B wire) + 32 B trimmed payload.
  EXPECT_EQ(down.payload_bytes, 32u);
  EXPECT_EQ(up.payload_bytes, 64u);
  EXPECT_EQ(h.link.message_counts().get("DbaConfig"), 1u);
}

TEST(HomeAgentUpdate, DbaMergePreservesHighBytesEndToEnd) {
  Harness h(Protocol::kUpdate);
  // Step 0 (no DBA): establish the full-precision copy on the device.
  h.cpu_mem.write_f32(kParamBase, 1.0f);
  h.agent->cpu_write_line(0.0, kParamBase);
  // Activate DBA and make an update that changes the HIGH bytes too.
  h.agent->set_dba(0.0, dba::DbaRegister(true, 2));
  h.cpu_mem.write_f32(kParamBase, 2.0f);  // Exponent change.
  h.agent->cpu_write_line(1.0, kParamBase);
  const float dev = h.device_mem.read_f32(kParamBase);
  // Device sees splice(1.0f, 2.0f, 2): high bytes stale.
  EXPECT_FLOAT_EQ(dev, dba::splice_f32(1.0f, 2.0f, 2));
  EXPECT_NE(dev, 2.0f);
}

// --- Invalidation protocol (stock CXL MESI) ---

TEST(HomeAgentInvalidation, WriteInvalidatesRemoteCopy) {
  Harness h(Protocol::kInvalidation);
  const auto d = h.agent->cpu_write_line(0.0, kParamBase);
  EXPECT_FALSE(d.has_value());  // No data crossed.
  EXPECT_EQ(h.gc.state(kParamBase), MesiState::kInvalid);
  EXPECT_EQ(h.agent->stats().invalidations, 1u);
  EXPECT_EQ(h.link.message_counts().get("Invalidate"), 1u);
  EXPECT_EQ(h.link.message_counts().get("InvAck"), 1u);
  const auto* meta = h.cpu_cache.peek(kParamBase);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(static_cast<MesiState>(meta->state), MesiState::kModified);
  EXPECT_TRUE(meta->dirty);
}

TEST(HomeAgentInvalidation, DeviceReadDemandFetches) {
  Harness h(Protocol::kInvalidation);
  h.cpu_mem.write_f32(kParamBase, 7.5f);
  h.agent->cpu_write_line(0.0, kParamBase);
  const auto a = h.agent->device_read_line(0.0, kParamBase);
  EXPECT_TRUE(a.crossed_link);
  EXPECT_GT(a.ready, 0.0);  // PCIe latency on the critical path.
  EXPECT_EQ(h.agent->stats().demand_fetches, 1u);
  EXPECT_EQ(h.gc.state(kParamBase), MesiState::kShared);
  EXPECT_FLOAT_EQ(h.device_mem.read_f32(kParamBase), 7.5f);
  // Second read hits locally.
  const auto a2 = h.agent->device_read_line(a.ready, kParamBase);
  EXPECT_FALSE(a2.crossed_link);
}

TEST(HomeAgentInvalidation, GradientDemandFetchByCpu) {
  Harness h(Protocol::kInvalidation);
  h.device_mem.write_f32(kGradBase, -2.0f);
  h.agent->device_write_line(0.0, kGradBase);
  EXPECT_EQ(h.gc.state(kGradBase), MesiState::kModified);
  const auto a = h.agent->cpu_read_line(0.0, kGradBase);
  EXPECT_TRUE(a.crossed_link);
  EXPECT_FLOAT_EQ(h.cpu_mem.read_f32(kGradBase), -2.0f);
  EXPECT_EQ(h.gc.state(kGradBase), MesiState::kShared);
}

TEST(HomeAgentInvalidation, SnoopFilterTracksSharers) {
  Harness h(Protocol::kInvalidation);
  h.agent->cpu_write_line(0.0, kParamBase);
  EXPECT_GT(h.agent->snoop_filter().entries(), 0u);
}

TEST(HomeAgentInvalidation, RepeatWritesDontReinvalidate) {
  Harness h(Protocol::kInvalidation);
  h.agent->cpu_write_line(0.0, kParamBase);
  h.agent->cpu_write_line(1.0, kParamBase);  // Already M, Gs already I.
  EXPECT_EQ(h.agent->stats().invalidations, 1u);
}

TEST(HomeAgent, FenceTracksLinkDrain) {
  Harness h(Protocol::kUpdate);
  const auto d = h.agent->cpu_write_line(0.0, kParamBase);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(h.agent->cxl_fence(0.0), d->delivered);
  EXPECT_DOUBLE_EQ(h.agent->cxl_fence(d->delivered + 1.0), d->delivered + 1.0);
}

TEST(HomeAgent, VolumeAccountingPerDirection) {
  Harness h(Protocol::kUpdate);
  for (int i = 0; i < 10; ++i) h.agent->cpu_write_line(0.0, kParamBase + i * 64);
  for (int i = 0; i < 4; ++i) h.agent->device_write_line(0.0, kGradBase + i * 64);
  EXPECT_EQ(h.link.channel(cxl::Direction::kCpuToDevice).stats().payload_bytes,
            640u);
  EXPECT_EQ(h.link.channel(cxl::Direction::kDeviceToCpu).stats().payload_bytes,
            256u);
}

TEST(HomeAgent, ObsCountersMatchCheckerInvariantCounts) {
  TECO_SKIP_WITHOUT_OBS();
  // The registry records at the link choke point — the same place the
  // protocol checker's flit-conservation invariant observes every packet.
  // The two countings must agree exactly; a divergence means one of them
  // is watching a side channel the other cannot see.
  Harness h(Protocol::kUpdate);
  obs::MetricsRegistry reg;
  h.agent->set_metrics(&reg);
  for (int i = 0; i < 12; ++i) {
    h.agent->cpu_write_line(0.0, kParamBase + i * 64);
  }
  for (int i = 0; i < 5; ++i) {
    h.agent->device_write_line(0.0, kGradBase + i * 64);
  }
  // m2s = CPU->device (dir 0), s2m = device->CPU (dir 1).
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("coherence.m2s.msgs")),
            h.checker->packets_injected(0));
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("coherence.s2m.msgs")),
            h.checker->packets_injected(1));
  // Every message here is a data push: FlushData accounts for all of them.
  EXPECT_DOUBLE_EQ(reg.value("coherence.m2s.flushdata"),
                   reg.value("coherence.m2s.msgs"));
  EXPECT_DOUBLE_EQ(reg.value("coherence.m2s.flushdata"), 12.0);
  EXPECT_DOUBLE_EQ(reg.value("coherence.s2m.flushdata"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("coherence.m2s.snoop"), 0.0);
  // Wire accounting: bytes and flits on the down channel cover 12 lines.
  EXPECT_DOUBLE_EQ(reg.value("cxl.down.bytes"), 12.0 * 64.0);
  EXPECT_GT(reg.value("cxl.down.flits"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("cxl.down.crc_errors"), 0.0);
}

TEST(HomeAgentInvalidation, ObsSnoopCounters) {
  TECO_SKIP_WITHOUT_OBS();
  Harness h(Protocol::kInvalidation);
  obs::MetricsRegistry reg;
  h.agent->set_metrics(&reg);
  // Device holds the line; a CPU write invalidates the remote copy.
  h.agent->device_read_line(0.0, kParamBase);
  h.agent->cpu_write_line(0.0, kParamBase);
  EXPECT_GT(reg.value("coherence.m2s.snoop"), 0.0);
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("coherence.m2s.msgs")),
            h.checker->packets_injected(0));
  EXPECT_EQ(static_cast<std::uint64_t>(reg.value("coherence.s2m.msgs")),
            h.checker->packets_injected(1));
}

}  // namespace
}  // namespace teco::coherence
