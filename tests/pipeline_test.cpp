// Pipeline-simulation tests + config-file and link-reliability tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/config.hpp"
#include "cxl/reliability.hpp"
#include "dl/model_zoo.hpp"
#include "offload/pipeline_sim.hpp"

namespace teco::offload {
namespace {

const Calibration& cal() { return default_calibration(); }

TEST(Pipeline, EmptyRun) {
  const auto r = simulate_pipeline(RuntimeKind::kTecoCxl,
                                   dl::bert_large_cased(), 4, 0, cal());
  EXPECT_TRUE(r.step_durations.empty());
  EXPECT_DOUBLE_EQ(r.total, 0.0);
}

TEST(Pipeline, SteadyStateMatchesSingleStepModel) {
  // The explicit multi-step pipeline must converge to the steady-state
  // single-step estimate for every non-DPU runtime.
  for (const auto kind :
       {RuntimeKind::kZeroOffload, RuntimeKind::kTecoCxl,
        RuntimeKind::kTecoReduction}) {
    const auto pipe = simulate_pipeline(kind, dl::bert_large_cased(), 4, 8,
                                        cal());
    const auto step =
        simulate_step(kind, dl::bert_large_cased(), 4, cal()).total();
    EXPECT_NEAR(pipe.steady_step, step, 0.03 * step)
        << to_string(kind);
  }
}

TEST(Pipeline, DurationsSumToTotalWithinTail) {
  const auto r = simulate_pipeline(RuntimeKind::kZeroOffload,
                                   dl::gpt2(), 4, 6, cal());
  const double sum = std::accumulate(r.step_durations.begin(),
                                     r.step_durations.end(), 0.0);
  EXPECT_NEAR(sum, r.total, 1e-9);
}

TEST(Pipeline, DpuOverlapsTransferAcrossSteps) {
  const auto dpu = simulate_pipeline(RuntimeKind::kZeroOffloadDpu,
                                     dl::bert_large_cased(), 4, 10, cal());
  const auto base = simulate_pipeline(RuntimeKind::kZeroOffload,
                                      dl::bert_large_cased(), 4, 10, cal());
  EXPECT_LT(dpu.steady_step, base.steady_step);
  // And the DPU pipeline's steady step stays near the single-step DPU
  // estimate (the overlap rule is the same).
  const auto est = simulate_step(RuntimeKind::kZeroOffloadDpu,
                                 dl::bert_large_cased(), 4, cal()).total();
  EXPECT_NEAR(dpu.steady_step, est, 0.06 * est);
}

TEST(Pipeline, InvalidationFallsBackToComposition) {
  const auto r = simulate_pipeline(RuntimeKind::kCxlInvalidation,
                                   dl::gpt2(), 4, 5, cal());
  const auto per = simulate_step(RuntimeKind::kCxlInvalidation, dl::gpt2(),
                                 4, cal()).total();
  EXPECT_NEAR(r.total, 5 * per, 1e-9);
}

TEST(Pipeline, TecoStepsAreIndependentOfHistory) {
  // With fences closing every producer window, no TECO step should be
  // slowed by its predecessor: all durations equal after the first.
  const auto r = simulate_pipeline(RuntimeKind::kTecoReduction,
                                   dl::t5_large(), 4, 6, cal());
  for (std::size_t i = 2; i < r.step_durations.size(); ++i) {
    EXPECT_NEAR(r.step_durations[i], r.step_durations[1],
                1e-3 * r.step_durations[1]);
  }
}

}  // namespace
}  // namespace teco::offload

namespace teco::core {
namespace {

TEST(ConfigFile, ParsesFullExample) {
  const auto parsed = parse_config(R"(# teco.cfg
protocol        = update
dba             = on
act_aft_steps   = 500
dirty_bytes     = 2
giant_cache_mib = 2048   # Table III sizing for T5-large
trace           = off
)");
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
  EXPECT_EQ(parsed.session.protocol, coherence::Protocol::kUpdate);
  EXPECT_TRUE(parsed.session.dba_enabled);
  EXPECT_EQ(parsed.session.act_aft_steps, 500u);
  EXPECT_EQ(parsed.session.dirty_bytes, 2);
  EXPECT_EQ(parsed.session.giant_cache_capacity, 2048ull << 20);
  EXPECT_FALSE(parsed.session.enable_trace);
  EXPECT_TRUE(parsed.unknown_keys.empty());
}

TEST(ConfigFile, ReportsErrorsWithLineNumbers) {
  const auto parsed = parse_config("protocol = sideways\nnot a pair\n"
                                   "dirty_bytes = 9\n");
  EXPECT_FALSE(parsed.ok());
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_NE(parsed.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(parsed.errors[1].find("line 2"), std::string::npos);
  EXPECT_NE(parsed.errors[2].find("line 3"), std::string::npos);
}

TEST(ConfigFile, CollectsUnknownKeys) {
  const auto parsed = parse_config("learning_rate = 0.001\ndba = on\n");
  EXPECT_TRUE(parsed.ok());  // Unknown keys are not errors.
  ASSERT_EQ(parsed.unknown_keys.size(), 1u);
  EXPECT_EQ(parsed.unknown_keys[0], "learning_rate");
}

TEST(ConfigFile, RoundTripsThroughText) {
  SessionConfig cfg;
  cfg.protocol = coherence::Protocol::kInvalidation;
  cfg.dba_enabled = false;
  cfg.act_aft_steps = 123;
  cfg.dirty_bytes = 3;
  cfg.giant_cache_capacity = 512ull << 20;
  cfg.enable_trace = true;
  const auto parsed = parse_config(to_config_text(cfg));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.session.protocol, cfg.protocol);
  EXPECT_EQ(parsed.session.act_aft_steps, cfg.act_aft_steps);
  EXPECT_EQ(parsed.session.dirty_bytes, cfg.dirty_bytes);
  EXPECT_EQ(parsed.session.giant_cache_capacity, cfg.giant_cache_capacity);
  EXPECT_EQ(parsed.session.enable_trace, cfg.enable_trace);
}

TEST(ConfigFile, MissingFileIsAnError) {
  const auto parsed = load_config_file("/nonexistent/teco.cfg");
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace teco::core

namespace teco::cxl {
namespace {

TEST(Reliability, NegligibleAtSpecBer) {
  const RetryModel m;  // BER 1e-12.
  EXPECT_LT(m.flit_error_probability(), 1e-8);
  EXPECT_NEAR(m.throughput_derate(), 1.0, 1e-8);
  EXPECT_LT(m.expected_retry_latency(), 1e-12);
}

TEST(Reliability, DegradesGracefullyAtHighBer) {
  RetryModel bad;
  bad.bit_error_rate = 1e-6;  // 6 orders worse than spec.
  const double p = bad.flit_error_probability();
  EXPECT_GT(p, 1e-4);
  EXPECT_LT(p, 1e-2);
  EXPECT_LT(bad.throughput_derate(), 1.0);
  EXPECT_GT(bad.throughput_derate(), 0.99);  // Still <1 % goodput loss.
  EXPECT_GT(bad.expected_retry_latency(), 0.0);
}

TEST(Reliability, MonotoneInBer) {
  RetryModel a, b;
  a.bit_error_rate = 1e-10;
  b.bit_error_rate = 1e-7;
  EXPECT_LT(a.flit_error_probability(), b.flit_error_probability());
  EXPECT_GT(a.throughput_derate(), b.throughput_derate());
}

}  // namespace
}  // namespace teco::cxl
