// Property tests for the serial channel against a brute-force reference.
//
// The Channel computes admission/finish/delivery in closed form (O(1) per
// packet with a bounded deque). The reference below simulates the same
// semantics the obvious way — an explicit FIFO of in-flight packets — and
// random workloads must agree exactly.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cxl/channel.hpp"
#include "sim/rng.hpp"

namespace teco::cxl {
namespace {

/// Straight-line reference: same contract as Channel::submit.
class ReferenceChannel {
 public:
  ReferenceChannel(double bw, double latency, std::size_t cap)
      : bw_(bw), latency_(latency), cap_(cap) {}

  Delivery submit(double t_ready, const Packet& pkt) {
    while (!inflight_.empty() && inflight_.front() <= t_ready) {
      inflight_.pop_front();
    }
    double admission = t_ready;
    if (inflight_.size() >= cap_) {
      admission = inflight_.front();
      inflight_.pop_front();
    }
    const double start = std::max(admission, wire_free_);
    const double finish = start + pkt.wire_bytes() / bw_;
    wire_free_ = finish;
    inflight_.push_back(finish);
    return Delivery{admission, finish, finish + latency_};
  }

 private:
  double bw_, latency_;
  std::size_t cap_;
  std::deque<double> inflight_;
  double wire_free_ = 0.0;
};

struct WorkloadParams {
  std::uint64_t seed;
  std::size_t capacity;
};

class ChannelVsReference
    : public ::testing::TestWithParam<WorkloadParams> {};

TEST_P(ChannelVsReference, RandomWorkloadsAgreeExactly) {
  const auto [seed, capacity] = GetParam();
  sim::Rng rng(seed);
  Channel ch("dut", 10e9, sim::ns(300), capacity);
  ReferenceChannel ref(10e9, sim::ns(300), capacity);

  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    // Mixed packet sizes: control flits, DBA payloads, full lines, bulk.
    const std::uint64_t sizes[] = {0, 32, 64, 4096};
    const auto pkt = data_packet(MessageType::kData, 0,
                                 sizes[rng.next_below(4)]);
    // Sometimes bursts at the same instant, sometimes idle gaps.
    if (rng.next_bool(0.3)) t += rng.uniform(0.0, 2e-6);
    const auto a = ch.submit(t, pkt);
    const auto b = ref.submit(t, pkt);
    ASSERT_DOUBLE_EQ(a.accepted, b.accepted) << "packet " << i;
    ASSERT_DOUBLE_EQ(a.finished, b.finished) << "packet " << i;
    ASSERT_DOUBLE_EQ(a.delivered, b.delivered) << "packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCapacities, ChannelVsReference,
    ::testing::Values(WorkloadParams{1, 1}, WorkloadParams{2, 2},
                      WorkloadParams{3, 8}, WorkloadParams{4, 128},
                      WorkloadParams{5, 128}, WorkloadParams{6, 3}));

TEST(ChannelProperties, ConservationOfWireTime) {
  // Total busy time equals total wire bytes / bandwidth, regardless of the
  // arrival pattern.
  sim::Rng rng(9);
  Channel ch("dut", 12.8e9, sim::ns(100));
  double t = 0.0;
  std::uint64_t bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t sz = 16 + rng.next_below(256);
    bytes += sz;
    t += rng.uniform(0.0, 1e-7);
    ch.submit(t, data_packet(MessageType::kData, 0, sz));
  }
  EXPECT_NEAR(ch.stats().busy_time, static_cast<double>(bytes) / 12.8e9,
              1e-12);
  EXPECT_EQ(ch.stats().wire_bytes, bytes);
}

TEST(ChannelProperties, FifoOrderPreserved) {
  // Finish times are nondecreasing in submission order even when ready
  // times interleave with the wire becoming free.
  sim::Rng rng(12);
  Channel ch("dut", 1e9, 0.0, 4);
  double t = 0.0, prev_finish = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += rng.uniform(0.0, 2e-6);
    const auto d = ch.submit(
        t, data_packet(MessageType::kData, 0, 1 + rng.next_below(2048)));
    ASSERT_GE(d.finished, prev_finish);
    prev_finish = d.finished;
  }
}

TEST(ChannelProperties, StreamEqualsLoopUnderBackpressure) {
  // submit_stream must replicate per-packet submission even when the
  // stream is far larger than the queue (heavy stall accounting).
  for (const std::uint64_t n : {1ull, 100ull, 129ull, 5000ull}) {
    Channel a("a", 2e9, sim::ns(50), 16);
    Channel b("b", 2e9, sim::ns(50), 16);
    const auto pkt = data_packet(MessageType::kFlushData, 0, 64);
    Delivery da{};
    for (std::uint64_t i = 0; i < n; ++i) da = a.submit(1e-6, pkt);
    const auto db = b.submit_stream(1e-6, pkt, n);
    EXPECT_NEAR(da.finished, db.finished, 1e-15) << "n=" << n;
    EXPECT_EQ(a.stats().stalled_packets, b.stats().stalled_packets)
        << "n=" << n;
    EXPECT_NEAR(a.stats().producer_stall, b.stats().producer_stall, 1e-9)
        << "n=" << n;
  }
}

TEST(ChannelProperties, ThroughputMonotoneInBandwidth) {
  double prev = 1e300;
  for (const double bw : {4e9, 8e9, 16e9, 32e9}) {
    Channel ch("dut", bw, sim::ns(400));
    const auto d = ch.submit_stream(
        0.0, data_packet(MessageType::kData, 0, 64), 100'000);
    EXPECT_LT(d.finished, prev);
    prev = d.finished;
  }
}

}  // namespace
}  // namespace teco::cxl
