// GCNII tests: graph construction, gradient checks, full-graph training.
#include <gtest/gtest.h>

#include <cmath>

#include "dl/gnn.hpp"

namespace teco::dl {
namespace {

GraphConfig small_graph() {
  GraphConfig cfg;
  cfg.n_nodes = 40;
  cfg.n_features = 6;
  cfg.n_classes = 3;
  cfg.edge_prob = 0.15;
  cfg.feature_noise = 0.8;  // Learnable quickly in unit tests.
  return cfg;
}

GcniiConfig small_net() {
  GcniiConfig cfg;
  cfg.n_layers = 3;
  cfg.hidden = 5;
  return cfg;
}

TEST(SyntheticGraph, WellFormed) {
  const auto g = make_synthetic_graph(small_graph());
  EXPECT_EQ(g.n_nodes, 40u);
  EXPECT_EQ(g.labels.size(), 40u);
  for (const auto l : g.labels) EXPECT_LT(l, 3u);
  // Normalized adjacency is symmetric with nonzero diagonal (self-loops).
  for (std::size_t i = 0; i < g.n_nodes; ++i) {
    EXPECT_GT(g.norm_adj.at(i, i), 0.0f);
    for (std::size_t j = 0; j < g.n_nodes; ++j) {
      EXPECT_FLOAT_EQ(g.norm_adj.at(i, j), g.norm_adj.at(j, i));
    }
  }
  // The split has both train and eval nodes.
  std::size_t train = 0;
  for (const bool m : g.train_mask) train += m ? 1 : 0;
  EXPECT_GT(train, 5u);
  EXPECT_LT(train, g.n_nodes - 5);
}

TEST(SyntheticGraph, NormalizedSpectralRadius) {
  // D^-1/2 (A+I) D^-1/2 has row "mass" <= 1 under the norm; check row sums
  // are bounded (a sanity property of symmetric normalization).
  const auto g = make_synthetic_graph(small_graph());
  for (std::size_t i = 0; i < g.n_nodes; ++i) {
    float row = 0.0f;
    for (std::size_t j = 0; j < g.n_nodes; ++j) row += g.norm_adj.at(i, j);
    EXPECT_LE(row, 1.5f);
  }
}

TEST(Gcnii, ValidatesConfig) {
  GcniiConfig bad = small_net();
  bad.n_layers = 0;
  EXPECT_THROW(Gcnii(bad, 6, 3), std::invalid_argument);
}

TEST(Gcnii, GradientsMatchFiniteDifferences) {
  const auto g = make_synthetic_graph(small_graph());
  Gcnii net(small_net(), g.n_features, g.n_classes);
  net.forward(g);
  net.backward(g);
  const std::vector<float> analytic(net.grads().begin(), net.grads().end());

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < net.n_params(); i += 9) {
    const float orig = net.params()[i];
    net.params()[i] = orig + eps;
    net.forward(g);
    const float lp = net.backward(g);
    net.params()[i] = orig - eps;
    net.forward(g);
    const float lm = net.backward(g);
    net.params()[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                6e-3f * std::max(1.0f, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(Gcnii, DeepStackStaysFinite) {
  // GCNII's identity mapping + initial residual prevent oversmoothing
  // collapse even for deep stacks; activations stay finite and distinct.
  const auto g = make_synthetic_graph(small_graph());
  GcniiConfig deep = small_net();
  deep.n_layers = 32;
  Gcnii net(deep, g.n_features, g.n_classes);
  const auto& logits = net.forward(g);
  float spread = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    ASSERT_TRUE(std::isfinite(logits.flat()[i]));
    spread = std::max(spread, std::abs(logits.flat()[i]));
  }
  EXPECT_GT(spread, 1e-6f);
}

TEST(Gcnii, LearnsTheSyntheticTask) {
  GraphConfig gcfg = small_graph();
  gcfg.n_nodes = 120;
  const float acc = train_gcnii_accuracy(gcfg, small_net(), 150, 5e-3f);
  EXPECT_GT(acc, 0.45f);  // 3 classes, chance = 0.33.
}

TEST(Gcnii, WisconsinScaleAccuracyNearPaper) {
  // Paper Table V: GCNII on Wisconsin reaches 54.90 % accuracy. Our
  // heterophilic synthetic stand-in lands in the same regime.
  GraphConfig gcfg;  // Defaults: 251 nodes, 5 classes, heterophilic.
  GcniiConfig mcfg;
  const float acc = train_gcnii_accuracy(gcfg, mcfg, 200, 5e-3f);
  EXPECT_GT(acc, 0.35f);
  EXPECT_LT(acc, 0.95f);
}

}  // namespace
}  // namespace teco::dl
