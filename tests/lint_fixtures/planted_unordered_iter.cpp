// teco-lint fixture: planted unordered-iter hazard. The range-for below
// feeds hash-table iteration order straight into event scheduling — the
// exact bug class that breaks (time,seq) replay determinism. teco-lint
// must flag line 20 (tests/lint_test.cpp pins the rule and line).
// This file is lint fodder, never compiled into a target.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Engine {
  void schedule_at(double when, std::uint64_t what);
};

struct Directory {
  std::unordered_map<std::uint64_t, double> deadlines;

  void schedule_all(Engine& eq) {
    // BUG: events are enqueued in hash order; two runs interleave them
    for (const auto& [line, when] : deadlines) {  // <- finding here
      eq.schedule_at(when, line);
    }
  }
};

}  // namespace fixture
