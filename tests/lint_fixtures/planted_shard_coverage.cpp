// Planted shard-coverage violations for the lint self-test. The planted
// lines are pinned by tests/lint_test.cpp and scripts/lint.sh — append
// only, never reflow.
//
// shard-coverage fires where queue-capture alone cannot: the class below
// has no trailing-underscore fields (so the capture heuristic sees nothing
// mutable to protect), yet a queue lambda still mutates it through a
// non-const method.
struct Queue {
  template <class F>
  void schedule_at(double when, F cb);
};

class Tally {
 public:
  void arm(Queue& q) {
    q.schedule_at(1.0, [this] { bump(); });  // planted: line 17
  }
  void bump() { ++n; }
  int value() const { return n; }

 private:
  int n = 0;  // no trailing underscore: invisible to the field heuristic
};

namespace sim {
class CausalSink {};
}  // namespace sim

// A CausalSink implementation is mutated from inside queue dispatch by
// construction (the queue calls on_schedule while it runs events), so it
// must carry a shard annotation; this one does not.
class DropSink : public sim::CausalSink {  // planted: line 33
 public:
  unsigned on_schedule(unsigned parent, unsigned char tag);

 private:
  unsigned long count_ = 0;
};
