// Planted cross-shard violation for the lint self-test. The planted line
// is pinned by tests/lint_test.cpp and scripts/lint.sh — append only,
// never reflow.
//
// Two queue contexts own the same shard-affine class — under the sharded
// engine its instances live on two different shards with nothing but the
// class comment saying which, exactly the coupling the rule rejects.
#define TECO_SHARD_AFFINE(cap)
#define TECO_QUEUE_CONTEXT(q) static_assert(true, "queue-context marker")

struct ShardCapability {
  void assert_held() const {}
};

struct MiniQueue {
  int pending_ = 0;  // unannotated, but never a violation: not affine
};

class SharedAccumulator {  // planted: line 19
 public:
  void add(long v) {
    shard_.assert_held();
    sum_ += v;
  }

 private:
  ShardCapability shard_;
  long sum_ TECO_SHARD_AFFINE(shard_) = 0;
};

class ProducerContext {
 public:
  void produce(long v) {
    shard_.assert_held();
    acc_.add(v);
  }

 private:
  ShardCapability shard_;
  MiniQueue q_ TECO_SHARD_AFFINE(shard_);
  TECO_QUEUE_CONTEXT(q_);
  SharedAccumulator acc_ TECO_SHARD_AFFINE(shard_);
};

class ConsumerContext {
 public:
  void consume(long v) {
    shard_.assert_held();
    acc_.add(-v);
  }

 private:
  ShardCapability shard_;
  MiniQueue q_ TECO_SHARD_AFFINE(shard_);
  TECO_QUEUE_CONTEXT(q_);
  SharedAccumulator acc_ TECO_SHARD_AFFINE(shard_);
};
