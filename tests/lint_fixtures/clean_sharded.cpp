// Near-miss fixture: everything here walks right up to the queue-capture /
// shard-coverage / cross-shard line without crossing it. The lint self-test
// (scripts/lint.sh, tests/lint_test.cpp) requires this file to scan clean.
// This file also feeds the ownership-map golden (ownership_map.{dot,json}).
#define TECO_SHARD_AFFINE(cap)
#define TECO_REQUIRES(cap)
#define TECO_QUEUE_CONTEXT(q) static_assert(true, "queue-context marker")

struct ShardCapability {
  void assert_held() const {}
};

struct Queue {
  template <class F>
  void schedule_at(double when, F cb);
};

// Annotated, and the lambda re-establishes the token first — the
// capability idiom the rules exist to enforce. Clean.
class GoodEngine {
 public:
  void arm(Queue& q) {
    q.schedule_at(1.0, [this] {
      shard_.assert_held();
      steps_ += 1;
    });
  }

 private:
  ShardCapability shard_;
  long steps_ TECO_SHARD_AFFINE(shard_) = 0;
};

// By-value captures copy state onto the queue instead of sharing it; the
// capture list is the whole story, so nothing to flag.
class Snapshotter {
 public:
  void arm(Queue& q) {
    q.schedule_at(2.0, [high = high_water_] { consume(high); });
  }
  static void consume(long v);

 private:
  long high_water_ = 0;
};

// The sanctioned crossing: both contexts reach the shared accumulator only
// through the event-channel boundary class, which reachability does not
// traverse. SharedTotal stays single-context. Clean.
class SharedTotal {
 public:
  void add(long v) {
    shard_.assert_held();
    sum_ += v;
  }

 private:
  ShardCapability shard_;
  long sum_ TECO_SHARD_AFFINE(shard_) = 0;
};

class EventChannel {
 public:
  void post(long v);

 private:
  SharedTotal total_ TECO_SHARD_AFFINE(shard_);
  ShardCapability shard_;
};

class LeftContext {
 public:
  void kick(long v) {
    shard_.assert_held();
    chan_.post(v);
  }

 private:
  ShardCapability shard_;
  Queue q_ TECO_SHARD_AFFINE(shard_);
  TECO_QUEUE_CONTEXT(q_);
  EventChannel chan_ TECO_SHARD_AFFINE(shard_);
};

class RightContext {
 public:
  void kick(long v) {
    shard_.assert_held();
    chan_.post(-v);
  }

 private:
  ShardCapability shard_;
  Queue q_ TECO_SHARD_AFFINE(shard_);
  TECO_QUEUE_CONTEXT(q_);
  EventChannel chan_ TECO_SHARD_AFFINE(shard_);
};
