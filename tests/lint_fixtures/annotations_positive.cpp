// Annotation fixture: must compile cleanly under Clang -Wthread-safety.
// The mirror image of annotations_negative.cpp — the same guarded access,
// but the shard capability is asserted first (the pattern every annotated
// class in src/ uses at its public entry points).
#include "core/annotations.hpp"

namespace fixture {

struct ShardState {
  teco::core::ShardCapability shard;
  int inflight TECO_GUARDED_BY(shard) = 0;
};

int peek(const ShardState& s) {
  s.shard.assert_held();
  return s.inflight;
}

int bump(ShardState& s) TECO_REQUIRES(s.shard);
int bump(ShardState& s) { return ++s.inflight; }

}  // namespace fixture
