// teco-lint fixture: a file full of near-misses that must produce ZERO
// findings. Each block sits just on the allowed side of a rule; if a rule
// regresses into flagging one of these, tests/lint_test.cpp fails.
// This file is lint fodder, never compiled into a target.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Stats {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  std::unordered_set<std::uint64_t> seen;
  std::map<std::uint64_t, double> ordered;
};

// unordered-iter: commutative integer accumulation is order-insensitive
// and therefore allowed over an unordered container.
std::uint64_t total(const Stats& s) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : s.counts) sum += value;
  return sum;
}

// unordered-iter: size/count/min/max style calls are on the allowlist.
std::uint64_t widest(const Stats& s) {
  std::uint64_t widest_key = 0;
  for (const auto& key : s.seen) widest_key = std::max(widest_key, key);
  return widest_key;
}

// fp-reduce: floating accumulation over an ORDERED container is fine; the
// summation order is pinned by the key order.
double ordered_sum(const Stats& s) {
  double acc = 0;
  for (const auto& [key, value] : s.ordered) acc += value;
  return acc;
}

// wallclock: seeded, explicit-state randomness in the sim::Rng style.
struct SeededRng {
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ULL + 1; }
};

// ptr-order: associative containers keyed on stable integer ids.
std::map<std::uint64_t, int> by_line_index;
std::unordered_map<std::uint64_t, int> by_tensor_id;

}  // namespace fixture
