// teco-lint fixture: a planted hazard carrying an allow() suppression.
// Must produce zero findings but exactly one counted suppression — the
// mechanism scripts/lint.sh budgets in CI. Never compiled into a target.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Sink {
  void emit(std::uint64_t key, int value);
};

inline void dump(const std::unordered_map<std::uint64_t, int>& m, Sink& s) {
  // Order genuinely does not matter to this sink; reviewed and waived.
  // teco-lint: allow(unordered-iter)
  for (const auto& [key, value] : m) s.emit(key, value);
}

}  // namespace fixture
