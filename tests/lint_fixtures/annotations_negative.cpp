// Annotation fixture: must FAIL to compile under Clang -Wthread-safety
// (registered as a WILL_FAIL ctest entry). Reading a TECO_GUARDED_BY field
// without holding the shard capability is exactly the mistake the
// annotations exist to catch; if this file ever compiles under the
// thread-safety analysis, the macros have silently stopped expanding.
#include "core/annotations.hpp"

namespace fixture {

struct ShardState {
  teco::core::ShardCapability shard;
  int inflight TECO_GUARDED_BY(shard) = 0;
};

// BUG: touches `inflight` with no assert_held() / REQUIRES — Clang must
// reject this with -Werror=thread-safety-analysis.
int peek(const ShardState& s) { return s.inflight; }

}  // namespace fixture
