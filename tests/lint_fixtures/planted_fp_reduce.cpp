// teco-lint fixture: planted fp-reduce hazards. Floating-point addition is
// not associative, so an accumulation whose visit order is unspecified (or
// a tagged reduce path without a pinned order) yields run-dependent sums.
// teco-lint must flag lines 15 and 23 (tests/lint_test.cpp pins them).
// This file is lint fodder, never compiled into a target.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

double gradient_norm(const std::unordered_map<std::uint64_t, double>& grads) {
  double acc = 0;
  // BUG: FP accumulation in hash order — the sum drifts between runs.
  for (const auto& [id, g] : grads) acc += g * g;
  return acc;
}

double loss_total(const std::vector<double>& losses, std::size_t stride) {
  double acc = 0;
  // Strided reduce path: order is data-layout-dependent, so it is tagged.
  // teco-lint: reduce
  for (std::size_t i = 0; i < losses.size(); i += stride) acc += losses[i];
  return acc;
}

}  // namespace fixture
