// teco-lint fixture: planted wallclock hazards. Wall-clock reads and
// unseeded entropy on simulation paths make replays non-reproducible.
// teco-lint must flag lines 13 and 18 (tests/lint_test.cpp pins them).
// This file is lint fodder, never compiled into a target.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture {

double stamp_event() {
  // BUG: host time leaks into a simulated timestamp.
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

unsigned jitter() {
  std::random_device entropy;  // BUG: unseeded, differs every run.
  return entropy();
}

}  // namespace fixture
