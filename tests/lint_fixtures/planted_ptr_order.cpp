// teco-lint fixture: planted ptr-order hazards. Pointer values change
// between runs (ASLR, allocation order), so ordering or hashing on them
// makes any derived order or id nondeterministic. teco-lint must flag
// lines 14 and 18 (tests/lint_test.cpp pins them).
// This file is lint fodder, never compiled into a target.
#include <cstdint>
#include <set>

namespace fixture {

struct Tensor {};

// BUG: iteration order of this set is the address order of the tensors.
std::set<Tensor*> live_tensors;

std::uint64_t tensor_id(const Tensor* t) {
  // BUG: the "id" is an address; differs run to run.
  return reinterpret_cast<std::uintptr_t>(t);
}

}  // namespace fixture
