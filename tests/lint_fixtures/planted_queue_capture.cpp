// Planted queue-capture violations for the lint self-test. The planted
// lines are pinned by tests/lint_test.cpp and scripts/lint.sh — append
// only, never reflow.
//
// A minimal stand-in for the event-queue surface: the rule triggers on the
// schedule_at/schedule_after token, not on the real sim::EventQueue type.
#define TECO_SHARD_AFFINE(cap)  // the linter reads tokens, not expansions

struct Queue {
  template <class F>
  void schedule_at(double when, F cb);
};

struct ShardCapability {
  void assert_held() const {}
};

// No shard annotation at all: capturing `this` leaks counter_ onto the
// queue with nothing pinning which shard may touch it.
class BareCounter {
 public:
  void arm(Queue& q) {
    q.schedule_at(1.0, [this] { counter_ += 1; });  // planted: line 23
  }

 private:
  long counter_ = 0;
};

// Annotated class, but neither the lambda body nor the enclosing method
// establishes the token: the capability exists and nothing asserts it.
class LazyHolder {
 public:
  void arm(Queue& q) {
    q.schedule_at(2.0, [this] { held_ = true; });  // planted: line 35
  }

 private:
  ShardCapability shard_;
  bool held_ TECO_SHARD_AFFINE(shard_) = false;
};

// A reference capture smuggles someone else's unannotated state onto the
// queue; the target resolves through the enclosing parameter list.
class Ledger {
 public:
  void bump() { total_ += 1; }

 private:
  long total_ = 0;
};

class Poster {
 public:
  void arm(Queue& q, Ledger& led) {
    q.schedule_at(3.0, [&led] { led.bump(); });  // planted: line 56
  }
};

// Default captures are always rejected: they hide what escapes.
class Fanout {
 public:
  void arm(Queue& q) {
    q.schedule_at(4.0, [&] { ticks_ += 1; });  // planted: line 64
  }

 private:
  long ticks_ = 0;
};
