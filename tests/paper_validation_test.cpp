// Paper-band acceptance suite: one place asserting that every headline
// quantity of the reproduction stays inside its documented band
// (EXPERIMENTS.md). These tests are the regression fence for the
// calibration: changing a constant that silently breaks an experiment's
// shape fails here.
#include <gtest/gtest.h>

#include "compress/lz4.hpp"
#include "compress/param_corpus.hpp"
#include "compress/quant_model.hpp"
#include "dl/dba_training.hpp"
#include "dl/model_zoo.hpp"
#include "md/offload_md.hpp"
#include "offload/experiments.hpp"

namespace teco {
namespace {

const offload::Calibration& cal() { return offload::default_calibration(); }

TEST(PaperBands, TableI_CommShare) {
  const double paper[] = {0.4224, 0.3787, 0.2865, 0.2595};
  const std::uint32_t batches[] = {4, 8, 16, 20};
  for (int i = 0; i < 4; ++i) {
    const auto s = offload::simulate_step(offload::RuntimeKind::kZeroOffload,
                                          dl::bert_large_cased(), batches[i],
                                          cal());
    EXPECT_NEAR(s.comm_fraction(), paper[i], 0.05) << "batch " << batches[i];
  }
}

TEST(PaperBands, TableIV_SpeedupCells) {
  struct Cell {
    const char* model;
    std::uint32_t batch;
    double paper;
    double tol;
  };
  // Generous per-cell tolerances; the headline averages are tighter below.
  const Cell cells[] = {
      {"GPT2", 4, 1.82, 0.25},
      {"Albert-xxlarge-v1", 4, 1.25, 0.15},
      {"Bert-large-cased", 4, 1.60, 0.15},
      {"T5-large", 4, 1.73, 0.15},
      {"Bert-large-cased", 16, 1.41, 0.15},
  };
  for (const auto& c : cells) {
    const auto cell = offload::speedup_vs_baseline(
        offload::RuntimeKind::kTecoReduction, dl::model_by_name(c.model),
        c.batch, cal());
    ASSERT_TRUE(cell.valid) << c.model;
    EXPECT_NEAR(cell.speedup, c.paper, c.tol) << c.model << " b" << c.batch;
  }
}

TEST(PaperBands, Headline) {
  const auto h =
      offload::headline_summary(dl::table3_models(), {4, 8, 16}, cal());
  // Paper: -33.7 % avg time (up to -55.4 %); -93.7 % avg comm (up to -100%).
  EXPECT_NEAR(h.avg_time_reduction, 0.337, 0.08);
  EXPECT_NEAR(h.avg_comm_reduction, 0.937, 0.05);
  EXPECT_GT(h.max_comm_reduction, 0.97);
}

TEST(PaperBands, InvalidationMotivation) {
  // Paper: +56.6 % average, up to +99.7 % (T5-large).
  double sum = 0.0, worst = 0.0;
  int n = 0;
  for (const auto& m : dl::table3_models()) {
    for (const std::uint32_t b : {4u, 8u, 16u}) {
      if (m.full_graph_only && b != 4u) continue;
      const auto upd =
          offload::simulate_step(offload::RuntimeKind::kTecoCxl, m, b, cal());
      const auto inv = offload::simulate_step(
          offload::RuntimeKind::kCxlInvalidation, m, b, cal());
      const double inc = inv.total() / upd.total() - 1.0;
      sum += inc;
      worst = std::max(worst, inc);
      ++n;
    }
  }
  EXPECT_NEAR(sum / n, 0.566, 0.25);
  EXPECT_NEAR(worst, 0.997, 0.15);
}

TEST(PaperBands, TableVI_ElevenBGainsLeast) {
  double min_speedup = 1e9, eleven_b = 0.0;
  for (const auto& m : dl::table6_models()) {
    const auto c = offload::speedup_vs_baseline(
        offload::RuntimeKind::kTecoReduction, m, 4, cal());
    min_speedup = std::min(min_speedup, c.speedup);
    if (m.name == "GPT2-11B") eleven_b = c.speedup;
  }
  EXPECT_DOUBLE_EQ(min_speedup, eleven_b);
  EXPECT_NEAR(eleven_b, 1.41, 0.15);  // Paper cell.
  // Paper: compute is ~63.4 % of the 11B baseline step.
  const auto b = offload::simulate_step(offload::RuntimeKind::kZeroOffload,
                                        dl::gpt2_11b(), 4, cal());
  const double compute_share =
      (b.forward_backward + b.grad_optimizer + b.param_optimizer) / b.total();
  EXPECT_NEAR(compute_share, 0.634, 0.06);
}

TEST(PaperBands, VolumeAndDbaContribution) {
  for (const auto& m : dl::table3_models()) {
    const auto r = offload::volume_report(offload::RuntimeKind::kTecoReduction,
                                          m, 4, cal());
    EXPECT_NEAR(r.param_volume_reduction, 0.50, 0.01) << m.name;
    const auto cxl =
        offload::simulate_step(offload::RuntimeKind::kTecoCxl, m, 4, cal());
    const auto red = offload::simulate_step(
        offload::RuntimeKind::kTecoReduction, m, 4, cal());
    const auto base = offload::simulate_step(
        offload::RuntimeKind::kZeroOffload, m, 4, cal());
    const double dba_gain = (cxl.total() - red.total()) / base.total();
    EXPECT_GE(dba_gain, 0.0) << m.name;
    EXPECT_LE(dba_gain, 0.085) << m.name;  // Paper: 0.8 %-7.3 %.
  }
}

TEST(PaperBands, TableVII_ZeroQuantRatio) {
  const auto row = compress::table7_training_hours();
  EXPECT_NEAR(row.ratio, 2.86, 0.6);
}

TEST(PaperBands, TableVIII_Lz4Ratios) {
  const double paper_savings[] = {0.05, 0.0, 0.0, 0.36};
  const auto specs = compress::table8_corpora();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto corpus = compress::make_param_corpus(specs[i], 1 << 20);
    EXPECT_NEAR(1.0 - compress::compression_ratio(corpus), paper_savings[i],
                0.05)
        << specs[i].model;
  }
}

TEST(PaperBands, SectionVII_MdGenerality) {
  const auto r =
      md::md_generality_report(md::MdWorkload{}, cal());
  EXPECT_NEAR(r.improvement, 0.215, 0.10);               // Paper: 21.5 %.
  EXPECT_NEAR(r.baseline.comm_fraction(), 0.27, 0.06);   // Paper: 27 %.
  EXPECT_NEAR(r.volume_reduction, 0.17, 0.10);           // Paper: 17 %.
  EXPECT_GT(r.cxl_contribution, 0.5);                    // Paper: 78 %.
}

TEST(PaperBands, Fig12_ExposureCuts) {
  const auto base = offload::simulate_step(offload::RuntimeKind::kZeroOffload,
                                           dl::t5_large(), 4, cal());
  const auto cxl = offload::simulate_step(offload::RuntimeKind::kTecoCxl,
                                          dl::t5_large(), 4, cal());
  const auto red = offload::simulate_step(
      offload::RuntimeKind::kTecoReduction, dl::t5_large(), 4, cal());
  const double cut_cxl =
      1.0 - cxl.param_transfer_exposed / base.param_transfer_exposed;
  EXPECT_NEAR(cut_cxl, 0.76, 0.15);                     // Paper: 76 %.
  EXPECT_LT(red.param_transfer_exposed, sim::ms(1.0));  // Fully hidden.
}

TEST(PaperBands, DbaAccuracyDeltaSmall) {
  // Table V: small metric deltas with DBA active after step 500.
  const auto task = dl::make_classification_task(77);
  dl::TrainRunConfig cfg;
  cfg.model = dl::default_model_for(task, 9);
  cfg.steps = 900;
  cfg.batch_size = 32;
  cfg.record_every = 0;
  const auto orig = dl::run_training(task, cfg);
  auto d = cfg;
  d.dba_enabled = true;
  d.act_aft_steps = 500;
  const auto dba = dl::run_training(task, d);
  EXPECT_NEAR(dba.final_metric, orig.final_metric, 0.06f);
}

}  // namespace
}  // namespace teco
