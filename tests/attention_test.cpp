// TinyTransformer tests: gradient checks, training, harness integration.
#include <gtest/gtest.h>

#include <cmath>

#include "dl/attention.hpp"
#include "dl/dba_training.hpp"
#include "sim/rng.hpp"

namespace teco::dl {
namespace {

TransformerConfig tiny_cfg(OutputKind kind) {
  TransformerConfig cfg;
  cfg.seq_len = 3;
  cfg.d_model = 4;
  cfg.d_ff = 6;
  cfg.out_dim = kind == OutputKind::kClassification ? 3 : 2;
  cfg.output = kind;
  cfg.seed = 21;
  return cfg;
}

TEST(TinyTransformer, ValidatesConfig) {
  TransformerConfig bad = tiny_cfg(OutputKind::kRegression);
  bad.d_model = 0;
  EXPECT_THROW(TinyTransformer{bad}, std::invalid_argument);
}

TEST(TinyTransformer, RejectsWrongInputWidth) {
  TinyTransformer net(tiny_cfg(OutputKind::kRegression));
  Tensor x(2, 5);  // Must be seq_len * d_model = 12.
  EXPECT_THROW((void)net.forward(x), std::invalid_argument);
}

TEST(TinyTransformer, OutputShape) {
  TinyTransformer net(tiny_cfg(OutputKind::kRegression));
  sim::Rng rng(1);
  const Tensor x = Tensor::randn(5, 12, rng, 1.0f);
  const Tensor& out = net.forward(x);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 2u);
}

TEST(TinyTransformer, AttentionRowsSumToOne) {
  // Indirect check via translation property is hard; instead verify that
  // scaling all keys by a constant keeps outputs finite and deterministic.
  TinyTransformer a(tiny_cfg(OutputKind::kRegression));
  TinyTransformer b(tiny_cfg(OutputKind::kRegression));
  sim::Rng rng(2);
  const Tensor x = Tensor::randn(3, 12, rng, 1.0f);
  const Tensor& ya = a.forward(x);
  const Tensor& yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.flat()[i], yb.flat()[i]);  // Same seed, same output.
    EXPECT_TRUE(std::isfinite(ya.flat()[i]));
  }
}

TEST(TinyTransformer, RegressionGradientsMatchFiniteDifferences) {
  TinyTransformer net(tiny_cfg(OutputKind::kRegression));
  sim::Rng rng(3);
  const Tensor x = Tensor::randn(4, 12, rng, 1.0f);
  const Tensor y = Tensor::randn(4, 2, rng, 1.0f);

  net.forward(x);
  net.backward(y);
  const std::vector<float> analytic(net.grads().begin(), net.grads().end());

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < net.n_params(); i += 5) {
    const float orig = net.params()[i];
    net.params()[i] = orig + eps;
    net.forward(x);
    const float lp = net.backward(y);
    net.params()[i] = orig - eps;
    net.forward(x);
    const float lm = net.backward(y);
    net.params()[i] = orig;
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                5e-3f * std::max(1.0f, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(TinyTransformer, ClassificationGradientsMatchFiniteDifferences) {
  TinyTransformer net(tiny_cfg(OutputKind::kClassification));
  sim::Rng rng(4);
  const Tensor x = Tensor::randn(4, 12, rng, 1.0f);
  Tensor y(4, 1);
  for (int i = 0; i < 4; ++i) y.at(i, 0) = static_cast<float>(i % 3);

  net.forward(x);
  net.backward(y);
  const std::vector<float> analytic(net.grads().begin(), net.grads().end());

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < net.n_params(); i += 7) {
    const float orig = net.params()[i];
    net.params()[i] = orig + eps;
    net.forward(x);
    const float lp = net.backward(y);
    net.params()[i] = orig - eps;
    net.forward(x);
    const float lm = net.backward(y);
    net.params()[i] = orig;
    EXPECT_NEAR(analytic[i], (lp - lm) / (2 * eps), 5e-3f) << "param " << i;
  }
}

TEST(TinyTransformer, LearnsClassificationTask) {
  const auto task = make_classification_task(71);
  TrainRunConfig cfg;
  cfg.transformer = default_transformer_for(task, 5);
  cfg.steps = 500;
  cfg.batch_size = 32;
  cfg.adam.lr = 3e-3f;
  const auto res = run_training(task, cfg);
  EXPECT_GT(res.final_metric, 0.6f);  // 10 classes, chance 0.1.
}

TEST(TinyTransformer, DbaHarnessIntegration) {
  // The transformer proxy must show the same Table-V behavior: DBA after
  // warm-up leaves the metric close to exact training.
  const auto task = make_regression_task(72);
  TrainRunConfig cfg;
  cfg.transformer = default_transformer_for(task, 6);
  cfg.steps = 500;
  cfg.batch_size = 16;
  const auto exact = run_training(task, cfg);
  auto d = cfg;
  d.dba_enabled = true;
  d.act_aft_steps = 250;
  const auto dba = run_training(task, d);
  EXPECT_EQ(dba.dba_active_steps, 250u);
  EXPECT_NEAR(dba.final_eval_loss, exact.final_eval_loss,
              0.3f * std::abs(exact.final_eval_loss) + 0.1f);
}

TEST(TinyTransformer, ByteChangePatternMatchesObservation2) {
  // Parameter updates concentrate in low bytes for the transformer proxy
  // too — the Fig. 2 observation is architecture-independent.
  const auto task = make_regression_task(73);
  TrainRunConfig cfg;
  cfg.transformer = default_transformer_for(task, 8);
  cfg.steps = 400;
  cfg.batch_size = 16;
  cfg.adam.lr = 5e-5f;
  cfg.record_every = 10;
  const auto res = run_training(task, cfg);
  EXPECT_GT(res.aggregate_param_changes.frac_low2_covered(), 0.5);
  EXPECT_GT(res.aggregate_param_changes.frac_low2_covered(),
            res.aggregate_grad_changes.frac_low2_covered());
}

}  // namespace
}  // namespace teco::dl
