// Unit tests for the discrete-event substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace teco::sim {
namespace {

TEST(Time, UnitHelpers) {
  EXPECT_DOUBLE_EQ(ms(1.0), 1e-3);
  EXPECT_DOUBLE_EQ(us(1.0), 1e-6);
  EXPECT_DOUBLE_EQ(ns(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(transfer_time(16e9, 16.0 * kGBps), 1.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedSameTimeTiesRunAfterQueuedTies) {
  // An event scheduled at the *current* timestamp from inside a running
  // event draws a later sequence number, so it runs after every event
  // already queued at that instant — nested work cannot jump the line.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(0);
    q.schedule_at(1.0, [&] { order.push_back(3); });
  });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(1.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, SeededReplayIsDeterministic) {
  // Two queues fed the same seeded schedule — random times drawn from a
  // small set so same-timestamp collisions are common, plus nested
  // rescheduling — must execute callbacks in bit-identical order. This is
  // the replay guarantee the header documents.
  const auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 200; ++i) {
      const Time when = static_cast<Time>(rng.next_below(8));
      q.schedule_at(when, [&q, &rng, &order, i] {
        order.push_back(i);
        if (rng.next_bool(0.25)) {
          q.schedule_after(static_cast<Time>(rng.next_below(3)),
                           [&order, i] { order.push_back(1000 + i); });
        }
      });
    }
    q.run();
    return order;
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // A different seed produces a different schedule (sanity: the test is
  // not vacuously comparing empty or trivially-equal orders).
  EXPECT_NE(run_once(43), a);
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] {
    order.push_back(1);
    q.schedule_after(0.5, [&] { order.push_back(2); });
  });
  q.schedule_at(2.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  q.schedule_at(3.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesIdleClock) {
  EventQueue q;
  q.run_until(7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, PastSchedulesClampAndCount) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });  // In the past.
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.clamped_past_schedules(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RunWithLimit) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [&] { ++fired; });
  EXPECT_EQ(q.run(2), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBoundsAndCoverage) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (const int s : seen) EXPECT_GT(s, 700);  // Roughly uniform.
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, BoolProbability) {
  Rng rng(3);
  int t = 0;
  for (int i = 0; i < 10000; ++i) t += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(t / 10000.0, 0.25, 0.02);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  Rng rng(5);
  RunningStat a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_gaussian();
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 4; ++i) h.add(2.5);  // All mass in bin [2, 3).
  // target = q * 4 walks to bin 2; interpolation is linear in the bin.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.25);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileAllUnderflowReturnsLo) {
  Histogram h(5.0, 10.0, 5);
  h.add(-100.0);
  h.add(0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  // And all-overflow mass sits at the upper bound.
  Histogram o(5.0, 10.0, 5);
  o.add(1e9);
  EXPECT_DOUBLE_EQ(o.quantile(0.5), 10.0);
}

TEST(Histogram, QuantileSingleBinAndClamping) {
  Histogram h(0.0, 4.0, 1);
  h.add(1.0);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(CounterSet, AccumulatesAndSorts) {
  CounterSet c;
  c.add("b", 2);
  c.add("a");
  c.add("b", 3);
  EXPECT_EQ(c.get("b"), 5u);
  EXPECT_EQ(c.get("a"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
  const auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "a");
  c.reset();
  EXPECT_EQ(c.get("b"), 0u);
}

TEST(Trace, DisabledDropsRecords) {
  Trace t(false);
  t.emit(1.0, "x", "e");
  EXPECT_TRUE(t.records().empty());
}

TEST(Trace, FilterAndRender) {
  Trace t(true);
  t.emit(1.0, "ha", "ReadOwn", "line 0");
  t.emit(2.0, "ha", "GO_Flush");
  t.emit(3.0, "ha", "ReadOwn");
  EXPECT_EQ(t.filter_event("ReadOwn").size(), 2u);
  EXPECT_NE(t.to_string().find("GO_Flush"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace teco::sim
