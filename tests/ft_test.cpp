// teco::ft — persistent store durability, checkpoint engine, fault
// injection, and the deterministic crash-recovery guarantee: a run with an
// injected device crash must restore, replay, and finish with bit-identical
// parameters and optimizer state versus an uninterrupted run, in both full
// and incremental checkpoint modes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/session.hpp"
#include "ft/checkpoint_engine.hpp"
#include "ft/fault_injector.hpp"
#include "ft/persistent_store.hpp"
#include "ft/recovery_manager.hpp"
#include "ft/trainer.hpp"
#include "offload/step_model.hpp"

namespace teco::ft {
namespace {

// ---------------------------------------------------------------- pmem ----

TEST(PersistentStore, StagedBytesAreNotDurableUntilCommit) {
  PersistentStore ps;
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ps.stage_bytes(0x100, payload);
  std::uint8_t out[8] = {};
  ps.read(0x100, out);
  EXPECT_EQ(out[0], 0);  // Crash-consistent readers see committed media only.
  ps.commit(0.0);
  ps.read(0x100, out);
  EXPECT_EQ(0, std::memcmp(out, payload, 8));
}

TEST(PersistentStore, CrashDropsStagedKeepsCommitted) {
  PersistentStore ps;
  const std::uint8_t first[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  ps.stage_bytes(0x40, first);
  ps.commit(0.0);

  const std::uint8_t second[4] = {0x11, 0x22, 0x33, 0x44};
  ps.stage_bytes(0x40, second);
  EXPECT_EQ(ps.staged_lines(), 1u);
  ps.crash();
  EXPECT_EQ(ps.staged_lines(), 0u);

  std::uint8_t out[4] = {};
  ps.read(0x40, out);
  EXPECT_EQ(0, std::memcmp(out, first, 4));
  EXPECT_EQ(ps.stats().crashes, 1u);
  EXPECT_EQ(ps.stats().lost_staged_lines, 1u);
}

TEST(PersistentStore, PartialLineStagingReadModifyWrites) {
  PersistentStore ps;
  const std::uint8_t base[4] = {9, 9, 9, 9};
  ps.stage_bytes(0x80, base);
  ps.commit(0.0);
  // Overwrite two bytes in the middle of the committed line.
  const std::uint8_t patch[2] = {7, 7};
  ps.stage_bytes(0x81, patch);
  ps.commit(0.0);
  std::uint8_t out[4] = {};
  ps.read(0x80, out);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 7);
  EXPECT_EQ(out[2], 7);
  EXPECT_EQ(out[3], 9);
}

TEST(PersistentStore, CommitTimeFollowsPmemTiming) {
  PmemTiming t;
  t.write_bw = 1e9;
  t.access_latency = sim::us(1.0);
  t.flush_latency = sim::us(2.0);
  PersistentStore ps(t);
  std::vector<std::uint8_t> big(64 * 100, 0x5A);
  ps.stage_bytes(0, big);
  const sim::Time done = ps.commit(10.0);
  EXPECT_DOUBLE_EQ(done, 10.0 + t.write_time(64 * 100) + t.flush_latency);
  // An empty commit is a free fence.
  EXPECT_DOUBLE_EQ(ps.commit(20.0), 20.0);
}

TEST(PersistentStore, TimingFromCalibration) {
  offload::Calibration cal;
  const auto t = PmemTiming::from_calibration(cal);
  EXPECT_DOUBLE_EQ(t.write_bw, cal.pmem_write_bw);
  EXPECT_DOUBLE_EQ(t.read_bw, cal.pmem_read_bw);
  EXPECT_DOUBLE_EQ(t.access_latency, cal.pmem_access_latency);
  EXPECT_DOUBLE_EQ(t.flush_latency, cal.pmem_flush_latency);
}

// ---------------------------------------------------- checkpoint engine ----

TEST(CheckpointEngine, FullModeWritesEverythingEveryTime) {
  PersistentStore ps;
  CheckpointEngine eng(ps, core::FtMode::kFull);
  std::vector<float> state(64, 1.0f);  // 4 lines.
  eng.register_state("s", state);
  EXPECT_EQ(eng.last_durable_step(), CheckpointEngine::kNoStep);

  auto r1 = eng.checkpoint(0.0, 0);
  EXPECT_EQ(r1.lines, 4u);
  state[0] = 2.0f;  // Unmarked change: full mode does not care.
  auto r2 = eng.checkpoint(1.0, 1);
  EXPECT_EQ(r2.lines, 4u);
  EXPECT_EQ(eng.last_durable_step(), 1u);

  std::vector<float> out(64);
  ASSERT_TRUE(eng.restore_into("s", out));
  EXPECT_EQ(out[0], 2.0f);
}

TEST(CheckpointEngine, IncrementalWritesOnlyDirtyLines) {
  PersistentStore ps;
  CheckpointEngine eng(ps, core::FtMode::kIncremental);
  std::vector<float> state(64, 1.0f);  // 4 lines of 16 floats.
  eng.register_state("s", state);

  // First checkpoint has no durable baseline: full pass.
  EXPECT_EQ(eng.checkpoint(0.0, 0).lines, 4u);

  state[17] = 5.0f;  // Line 1.
  eng.mark_floats("s", 17, 1);
  const auto r = eng.checkpoint(1.0, 1);
  EXPECT_EQ(r.lines, 1u);
  EXPECT_EQ(eng.stats().lines_skipped_clean, 3u);

  std::vector<float> out(64);
  ASSERT_TRUE(eng.restore_into("s", out));
  EXPECT_EQ(out[17], 5.0f);
  EXPECT_EQ(out[0], 1.0f);

  // A clean checkpoint writes no region lines (header only).
  EXPECT_EQ(eng.checkpoint(2.0, 2).lines, 0u);
}

TEST(CheckpointEngine, HeaderSurvivesStagedCrash) {
  PersistentStore ps;
  CheckpointEngine eng(ps, core::FtMode::kFull);
  std::vector<float> state(16, 1.0f);
  eng.register_state("s", state);
  eng.checkpoint(0.0, 4);
  ASSERT_EQ(eng.last_durable_step(), 4u);

  // Stage a newer image but crash before it commits.
  state[0] = 9.0f;
  ps.stage_bytes(0x1000, std::vector<std::uint8_t>(64, 0xFF));
  ps.crash();
  EXPECT_EQ(eng.last_durable_step(), 4u);
  std::vector<float> out(16);
  ASSERT_TRUE(eng.restore_into("s", out));
  EXPECT_EQ(out[0], 1.0f);
}

TEST(CheckpointEngine, TracksFlushDataFromLiveSession) {
  core::Session s;
  const auto pbase = s.allocate_parameters("p", 4 * mem::kLineBytes);

  PersistentStore ps;
  CheckpointEngine eng(ps, core::FtMode::kIncremental);
  std::vector<float> shadow(4 * mem::kWordsPerLine, 0.0f);
  eng.register_state("p", shadow, pbase);
  s.add_observer(&eng);

  eng.checkpoint(0.0, 0);  // Baseline; clears the initial all-dirty marks.

  // Push exactly one line through the update protocol.
  std::vector<float> line(mem::kWordsPerLine, 3.0f);
  for (std::size_t i = 0; i < line.size(); ++i) shadow[i] = line[i];
  s.cpu_write_parameters(pbase, line);
  s.optimizer_step_complete();

  const auto r = eng.checkpoint(s.now(), 1);
  EXPECT_EQ(r.lines, 1u);  // Only the pushed line was dirty.
  s.remove_observer(&eng);
}

TEST(CheckpointEngine, RejectsDuplicateRegions) {
  PersistentStore ps;
  CheckpointEngine eng(ps, core::FtMode::kFull);
  std::vector<float> a(16), b(16);
  eng.register_state("x", a);
  EXPECT_THROW(eng.register_state("x", b), std::invalid_argument);
  EXPECT_FALSE(eng.restore_into("y", a));
}

// ------------------------------------------------------- fault injector ----

TEST(FaultInjector, SampledCrashScheduleIsDeterministic) {
  FaultPlan plan;
  plan.seed = 13;
  plan.mtbf = 10.0;
  plan.mtbf_horizon = 100.0;
  FaultInjector a(plan), b(plan);
  ASSERT_FALSE(a.sampled_crash_times().empty());
  EXPECT_EQ(a.sampled_crash_times(), b.sampled_crash_times());
  plan.seed = 14;
  FaultInjector c(plan);
  EXPECT_NE(a.sampled_crash_times(), c.sampled_crash_times());
}

TEST(FaultInjector, DownWindowStallsSubmission) {
  FaultPlan plan;
  plan.link_down.push_back({1.0, 0.5});
  FaultInjector inj(plan);
  const cxl::Packet pkt = cxl::data_packet(cxl::MessageType::kFlushData, 0, 64);
  EXPECT_DOUBLE_EQ(
      inj.transmit_delay(cxl::Direction::kCpuToDevice, 0.5, pkt, 1), 0.0);
  EXPECT_DOUBLE_EQ(
      inj.transmit_delay(cxl::Direction::kCpuToDevice, 1.2, pkt, 1), 0.3);
  EXPECT_EQ(inj.stats().packets_delayed, 1u);
  EXPECT_DOUBLE_EQ(inj.stats().delay_injected, 0.3);
}

TEST(FaultInjector, ExplicitCrashStepsAreConsumedOnce) {
  FaultPlan plan;
  plan.crash_steps = {3, 7};
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.crash_due(2, 0.0));
  EXPECT_TRUE(inj.crash_due(3, 0.0));
  EXPECT_FALSE(inj.crash_due(3, 0.0));  // Consumed; replay won't re-crash.
  EXPECT_TRUE(inj.crash_due(7, 0.0));
  EXPECT_EQ(inj.stats().crashes, 2u);
}

TEST(FaultInjector, PoisonEventsAreConsumed) {
  FaultPlan plan;
  plan.poison = {{2, 5}, {2, 9}, {4, 1}};
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.take_poison(0).empty());
  EXPECT_EQ(inj.take_poison(2).size(), 2u);
  EXPECT_TRUE(inj.take_poison(2).empty());
  EXPECT_EQ(inj.take_poison(4).size(), 1u);
  EXPECT_EQ(inj.stats().poisoned_lines, 3u);
}

TEST(FaultInjector, FlakyLinkDetection) {
  FaultPlan quiet;
  EXPECT_FALSE(FaultInjector(quiet).link_flaky_at(0.0));
  FaultPlan ber;
  ber.bit_error_rate = 1e-5;
  EXPECT_TRUE(FaultInjector(ber).link_flaky_at(0.0));
  FaultPlan down;
  down.link_down.push_back({5.0, 1.0});
  FaultInjector inj(down);
  EXPECT_TRUE(inj.link_flaky_at(5.5));
  EXPECT_FALSE(inj.link_flaky_at(50.0));
}

// -------------------------------------------------------- crash recovery ----

FtTrainConfig small_config(core::FtMode mode) {
  FtTrainConfig cfg;
  cfg.session.ft_mode = mode;
  cfg.session.ft_checkpoint_interval = 6;
  cfg.session.act_aft_steps = 4;  // DBA activates mid-run.
  cfg.steps = 24;
  cfg.n_params = 2048;  // 128 lines.
  cfg.update_fraction = 0.3;
  cfg.step_compute = sim::us(50.0);
  cfg.cpu_opt_time = sim::us(5.0);
  return cfg;
}

void expect_bit_identical(const FtTrainResult& a, const FtTrainResult& b) {
  ASSERT_EQ(a.master.size(), b.master.size());
  EXPECT_EQ(0, std::memcmp(a.master.data(), b.master.data(),
                           a.master.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(a.accel.data(), b.accel.data(),
                           a.accel.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(a.adam_m.data(), b.adam_m.data(),
                           a.adam_m.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(a.adam_v.data(), b.adam_v.data(),
                           a.adam_v.size() * sizeof(float)));
}

class CrashRecovery : public ::testing::TestWithParam<core::FtMode> {};

TEST_P(CrashRecovery, ReplayIsBitIdenticalToUninterruptedRun) {
  const auto baseline = run_ft_training(small_config(GetParam()));
  EXPECT_EQ(baseline.recovery.recoveries, 0u);
  EXPECT_GT(baseline.checkpoint.checkpoints, 0u);

  auto crashed_cfg = small_config(GetParam());
  // Crash mid-interval: the last durable checkpoint is after step 11, so
  // steps 12..14 must replay from the restored image.
  crashed_cfg.faults.crash_steps = {14};
  const auto crashed = run_ft_training(crashed_cfg);

  EXPECT_EQ(crashed.recovery.recoveries, 1u);
  EXPECT_EQ(crashed.recovery.steps_replayed, 3u);  // Resume at 12, crash at 14.
  EXPECT_EQ(crashed.faults.crashes, 1u);
  EXPECT_GT(crashed.recovery.lost_work, 0.0);
  EXPECT_GT(crashed.recovery.restore_time, 0.0);
  EXPECT_GT(crashed.steps_executed, baseline.steps_executed);
  EXPECT_GT(crashed.wall_time, baseline.wall_time);
  EXPECT_EQ(crashed.final_degraded, DegradedMode::kNone);

  expect_bit_identical(baseline, crashed);
}

TEST_P(CrashRecovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  auto cfg = small_config(GetParam());
  cfg.steps = 10;
  cfg.session.ft_checkpoint_interval = 8;
  cfg.faults.crash_steps = {2};
  const auto crashed = run_ft_training(cfg);
  EXPECT_EQ(crashed.recovery.restarts_from_scratch, 1u);
  EXPECT_EQ(crashed.recovery.steps_replayed, 3u);  // Steps 0..2 redone.

  auto clean_cfg = small_config(GetParam());
  clean_cfg.steps = 10;
  clean_cfg.session.ft_checkpoint_interval = 8;
  const auto clean = run_ft_training(clean_cfg);
  expect_bit_identical(clean, crashed);
}

TEST_P(CrashRecovery, SurvivesBackToBackCrashes) {
  auto cfg = small_config(GetParam());
  cfg.faults.crash_steps = {8, 9, 20};
  const auto crashed = run_ft_training(cfg);
  EXPECT_EQ(crashed.recovery.recoveries, 3u);

  const auto baseline = run_ft_training(small_config(GetParam()));
  expect_bit_identical(baseline, crashed);
}

INSTANTIATE_TEST_SUITE_P(Modes, CrashRecovery,
                         ::testing::Values(core::FtMode::kFull,
                                           core::FtMode::kIncremental));

TEST(CrashRecovery, IncrementalWritesFewerBytesThanFull) {
  const auto full = run_ft_training(small_config(core::FtMode::kFull));
  const auto inc = run_ft_training(small_config(core::FtMode::kIncremental));
  EXPECT_LT(inc.checkpoint.bytes_written, full.checkpoint.bytes_written);
  // Same number of checkpoints, same durable coverage.
  EXPECT_EQ(inc.checkpoint.checkpoints, full.checkpoint.checkpoints);
  // The hidden-by-overlap accounting must never exceed the media time.
  EXPECT_LE(inc.checkpoint.exposed_time, inc.checkpoint.media_time + 1e-12);
  EXPECT_LT(inc.checkpoint.exposed_time, full.checkpoint.exposed_time);
}

// --------------------------------------------------------- other faults ----

TEST(FaultTolerance, LinkDownWindowDelaysTraffic) {
  auto cfg = small_config(core::FtMode::kOff);
  const auto baseline = run_ft_training(cfg);

  auto down_cfg = small_config(core::FtMode::kOff);
  down_cfg.faults.link_down.push_back({baseline.wall_time * 0.25,
                                       baseline.wall_time * 0.10});
  const auto down = run_ft_training(down_cfg);
  EXPECT_GT(down.faults.packets_delayed, 0u);
  EXPECT_GT(down.wall_time, baseline.wall_time);
}

TEST(FaultTolerance, PoisonedLinesAreScrubbedFromMaster) {
  auto cfg = small_config(core::FtMode::kFull);
  cfg.faults.poison = {{5, 3}, {9, 40}};
  const auto res = run_ft_training(cfg);
  EXPECT_EQ(res.faults.poisoned_lines, 2u);
  EXPECT_EQ(res.recovery.scrubbed_lines, 2u);
  EXPECT_EQ(res.steps_completed, cfg.steps);
}

TEST(FaultTolerance, FlakyLinkCrashTriggersDbaOffDegradedMode) {
  auto cfg = small_config(core::FtMode::kFull);
  cfg.faults.bit_error_rate = 1e-5;
  cfg.faults.crash_steps = {10};
  const auto res = run_ft_training(cfg);
  EXPECT_EQ(res.recovery.recoveries, 1u);
  EXPECT_EQ(res.final_degraded, DegradedMode::kDbaOff);
  EXPECT_EQ(res.steps_completed, cfg.steps);
}

TEST(FaultTolerance, RetrainWindowCrashFallsBackToInvalidation) {
  auto cfg = small_config(core::FtMode::kFull);
  // An upcoming retrain window (within the flakiness lookahead, but past
  // the end of the run so it never perturbs timing) marks the link flaky.
  cfg.faults.link_down.push_back({sim::ms(500.0), sim::ms(1.0)});
  cfg.faults.crash_steps = {11};
  const auto res = run_ft_training(cfg);
  EXPECT_EQ(res.recovery.recoveries, 1u);
  EXPECT_EQ(res.final_degraded, DegradedMode::kInvalidation);
  EXPECT_EQ(res.steps_completed, cfg.steps);
}

TEST(FaultTolerance, DegradedModeCanBeDisallowed) {
  auto cfg = small_config(core::FtMode::kFull);
  cfg.faults.bit_error_rate = 1e-5;
  cfg.faults.crash_steps = {10};
  cfg.allow_degraded = false;
  const auto res = run_ft_training(cfg);
  EXPECT_EQ(res.final_degraded, DegradedMode::kNone);
}

TEST(FaultTolerance, MtbfSampledCrashesRecoverToo) {
  auto cfg = small_config(core::FtMode::kIncremental);
  const auto base = run_ft_training(cfg);
  cfg.faults.seed = 21;
  cfg.faults.mtbf = base.wall_time / 3.0;
  cfg.faults.mtbf_horizon = base.wall_time;
  const auto res = run_ft_training(cfg);
  EXPECT_GT(res.recovery.recoveries, 0u);
  EXPECT_EQ(res.steps_completed, cfg.steps);
  expect_bit_identical(base, res);
}

TEST(FaultTolerance, GanttShowsFaultLanes) {
  auto cfg = small_config(core::FtMode::kFull);
  cfg.faults.crash_steps = {14};
  const auto res = run_ft_training(cfg);
  EXPECT_NE(res.gantt.find("train"), std::string::npos);
  EXPECT_NE(res.gantt.find("pmem"), std::string::npos);
  EXPECT_NE(res.gantt.find("restore"), std::string::npos);
  EXPECT_NE(res.gantt.find("fault"), std::string::npos);
}

// --------------------------------------------------------- step model ----

TEST(FtStepModel, CheckpointCostsScaleWithModel) {
  offload::Calibration cal;
  dl::ModelConfig m;
  m.n_params = 1'000'000;
  const auto c = offload::checkpoint_costs(m, cal);
  EXPECT_EQ(c.full_bytes, m.param_bytes() * 3);
  EXPECT_GT(c.full_write, 0.0);
  EXPECT_GT(c.restore, 0.0);
}

TEST(FtStepModel, OverheadDecreasesWithMtbf) {
  const auto frequent =
      offload::expected_ft_overhead(0.1, 10, 0.05, 0.2, 100.0);
  const auto rare =
      offload::expected_ft_overhead(0.1, 10, 0.05, 0.2, 10'000.0);
  EXPECT_GT(frequent.overhead_fraction, rare.overhead_fraction);
  EXPECT_DOUBLE_EQ(frequent.ckpt_per_step, 0.005);
  // Half the interval (plus amortized checkpoint) is lost on average.
  EXPECT_DOUBLE_EQ(frequent.expected_lost_work, 10.0 * 0.105 / 2.0);
}

}  // namespace
}  // namespace teco::ft
