// Unit + property tests for dirty-byte aggregation.
#include <gtest/gtest.h>

#include <cstring>

#include "dba/aggregator.hpp"
#include "dba/dba_register.hpp"
#include "dba/disaggregator.hpp"
#include "sim/rng.hpp"

namespace teco::dba {
namespace {

using Line = mem::BackingStore::Line;

Line random_line(sim::Rng& rng) {
  Line l;
  for (auto& b : l) b = static_cast<std::uint8_t>(rng.next_below(256));
  return l;
}

TEST(DbaRegister, PaperExampleEncoding) {
  // Section V-B: active with dirty_bytes = 2 encodes as 1010b.
  EXPECT_EQ(DbaRegister(true, 2).encode(), 0b1010u);
  EXPECT_EQ(DbaRegister(false, 2).encode(), 0b0010u);
  EXPECT_EQ(DbaRegister(true, 4).encode(), 0b1100u);
}

TEST(DbaRegister, DecodeRoundTrip) {
  for (std::uint8_t bits = 0; bits < 16; ++bits) {
    const auto dirty = static_cast<std::uint8_t>(bits & 0b0111u);
    if (dirty > 4) continue;  // 5..7 are reserved encodings.
    const auto r = DbaRegister::decode(bits);
    EXPECT_EQ(r.encode(), bits);
    EXPECT_EQ(r.active(), (bits & 0b1000u) != 0);
    EXPECT_EQ(r.dirty_bytes(), dirty);
  }
}

TEST(DbaRegister, RejectsBadLength) {
  EXPECT_THROW(DbaRegister(true, 5), std::invalid_argument);
}

TEST(DbaRegister, TrimsOnlyWhenActiveAndPartial) {
  EXPECT_TRUE(DbaRegister(true, 2).trims());
  EXPECT_FALSE(DbaRegister(false, 2).trims());
  EXPECT_FALSE(DbaRegister(true, 4).trims());  // Whole word: bypass.
  EXPECT_TRUE(DbaRegister(true, 0).trims());   // Degenerate: sends nothing.
}

TEST(Aggregator, PayloadSizes) {
  EXPECT_EQ(payload_bytes(0), 0u);
  EXPECT_EQ(payload_bytes(1), 16u);
  EXPECT_EQ(payload_bytes(2), 32u);
  EXPECT_EQ(payload_bytes(3), 48u);
  EXPECT_EQ(payload_bytes(4), 64u);
  EXPECT_EQ(Aggregator(DbaRegister(true, 2)).packed_bytes(), 32u);
  EXPECT_EQ(Aggregator(DbaRegister(false, 2)).packed_bytes(), 64u);
}

TEST(Aggregator, TakesLeastSignificantBytes) {
  Line line{};
  // Word 0 = 0xAABBCCDD little-endian: bytes DD CC BB AA.
  line[0] = 0xDD;
  line[1] = 0xCC;
  line[2] = 0xBB;
  line[3] = 0xAA;
  Aggregator agg(DbaRegister(true, 2));
  const auto payload = agg.pack(line);
  ASSERT_EQ(payload.size(), 32u);
  // Least significant two bytes of word 0 (0xCCDD) in memory order.
  EXPECT_EQ(payload[0], 0xDD);
  EXPECT_EQ(payload[1], 0xCC);
}

TEST(Aggregator, BypassReturnsFullLine) {
  sim::Rng rng(1);
  const Line line = random_line(rng);
  Aggregator agg(DbaRegister(false, 2));
  const auto payload = agg.pack(line);
  ASSERT_EQ(payload.size(), 64u);
  EXPECT_EQ(std::memcmp(payload.data(), line.data(), 64), 0);
}

TEST(Disaggregator, RejectsWrongPayloadSize) {
  Disaggregator dis(DbaRegister(true, 2));
  const Line old{};
  std::vector<std::uint8_t> wrong(16);
  EXPECT_THROW((void)dis.merge(old, wrong), std::invalid_argument);
  Disaggregator bypass(DbaRegister(false, 2));
  EXPECT_THROW((void)bypass.merge(old, wrong), std::invalid_argument);
}

TEST(Disaggregator, MergeKeepsHighBytes) {
  Line old{};
  Line fresh{};
  for (std::size_t i = 0; i < 64; ++i) {
    old[i] = 0x11;
    fresh[i] = 0x99;
  }
  Aggregator agg(DbaRegister(true, 2));
  Disaggregator dis(DbaRegister(true, 2));
  const auto merged = dis.merge(old, agg.pack(fresh));
  for (std::size_t w = 0; w < 16; ++w) {
    EXPECT_EQ(merged[w * 4 + 0], 0x99);  // Low bytes from the new data.
    EXPECT_EQ(merged[w * 4 + 1], 0x99);
    EXPECT_EQ(merged[w * 4 + 2], 0x11);  // High bytes stay stale.
    EXPECT_EQ(merged[w * 4 + 3], 0x11);
  }
  EXPECT_EQ(dis.extra_reads(), 1u);
}

class DbaRoundTrip : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(DbaRoundTrip, MergeMatchesSpliceSpec) {
  const std::uint8_t n = GetParam();
  sim::Rng rng(100 + n);
  Aggregator agg(DbaRegister(true, n));
  Disaggregator dis(DbaRegister(true, n));
  for (int iter = 0; iter < 200; ++iter) {
    const Line old = random_line(rng);
    const Line fresh = random_line(rng);
    const auto merged = dis.merge(old, agg.pack(fresh));
    for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
      float of, ff, mf;
      std::memcpy(&of, old.data() + w * 4, 4);
      std::memcpy(&ff, fresh.data() + w * 4, 4);
      std::memcpy(&mf, merged.data() + w * 4, 4);
      // Bitwise compare (floats may be NaN with random bits).
      std::uint32_t mi, si;
      std::memcpy(&mi, &mf, 4);
      const float spliced = splice_f32(of, ff, n);
      std::memcpy(&si, &spliced, 4);
      ASSERT_EQ(mi, si) << "word " << w << " n=" << int{n};
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDirtyLengths, DbaRoundTrip,
                         ::testing::Values<std::uint8_t>(0, 1, 2, 3, 4));

TEST(DbaRoundTrip, FullDirtyIsIdentity) {
  sim::Rng rng(7);
  Aggregator agg(DbaRegister(true, 4));
  Disaggregator dis(DbaRegister(true, 4));
  const Line old = random_line(rng);
  const Line fresh = random_line(rng);
  EXPECT_EQ(dis.merge(old, agg.pack(fresh)), fresh);
}

TEST(SpliceF32, EndpointBehavior) {
  EXPECT_FLOAT_EQ(splice_f32(1.5f, 2.5f, 4), 2.5f);
  EXPECT_FLOAT_EQ(splice_f32(1.5f, 2.5f, 0), 1.5f);
  EXPECT_THROW(splice_f32(1.0f, 2.0f, 5), std::invalid_argument);
}

TEST(SpliceF32, MatchesBitMask) {
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a_bits = static_cast<std::uint32_t>(rng.next_u64());
    const auto b_bits = static_cast<std::uint32_t>(rng.next_u64());
    float a, b;
    std::memcpy(&a, &a_bits, 4);
    std::memcpy(&b, &b_bits, 4);
    for (std::uint8_t n = 0; n <= 4; ++n) {
      const std::uint32_t mask =
          n == 4 ? 0xFFFFFFFFu : (1u << (8 * n)) - 1u;
      const std::uint32_t expect = (a_bits & ~mask) | (b_bits & mask);
      const float s = splice_f32(a, b, n);
      std::uint32_t got;
      std::memcpy(&got, &s, 4);
      ASSERT_EQ(got, expect);
    }
  }
}

TEST(SpliceF32, SmallUpdatePreservedExactly) {
  // A parameter whose change only touches the low mantissa bytes transfers
  // losslessly under DBA(2) — the Fig. 2 Case-1/2 population.
  const float old_val = 1.0f;
  std::uint32_t bits;
  std::memcpy(&bits, &old_val, 4);
  bits += 37;  // Low-byte mantissa nudge.
  float new_val;
  std::memcpy(&new_val, &bits, 4);
  EXPECT_EQ(splice_f32(old_val, new_val, 2), new_val);
}

TEST(HardwareConstants, MatchSectionVIIID) {
  EXPECT_NEAR(kAggregatorLatency, 1.28e-9, 1e-15);
  EXPECT_NEAR(kDisaggregatorLatency, 1.126e-9, 1e-15);
  EXPECT_NEAR(kModeledDbaLatency, 1e-9, 1e-15);
  EXPECT_DOUBLE_EQ(kAggregatorPowerW, 0.0127);
  EXPECT_DOUBLE_EQ(kDisaggregatorPowerW, 0.017);
}

}  // namespace
}  // namespace teco::dba
