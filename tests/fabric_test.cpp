// teco::fabric — pooled CXL 3.x fabric: switch arbitration fairness, pool
// admission, in-pool all-reduce numeric correctness against a scalar
// reference, strategy ordering under a contended port, and seeded
// bit-identical replay including the metrics registry snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fabric/allreduce.hpp"
#include "fabric/fabric.hpp"
#include "fabric/pool.hpp"
#include "fabric/switch.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace {

using namespace teco;

fabric::FabricConfig small_cfg(std::uint32_t nodes,
                               fabric::ReduceStrategy strategy) {
  fabric::FabricConfig cfg;
  cfg.nodes = nodes;
  cfg.reduce = strategy;
  cfg.shard_bytes = 256;  // 4 lines, 64 floats.
  cfg.pool_bytes = 1ull << 20;
  return cfg;
}

std::vector<std::vector<float>> seeded_gradients(std::uint32_t nodes,
                                                 std::uint64_t floats,
                                                 std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::vector<float>> g(nodes);
  for (auto& shard : g) {
    shard.resize(floats);
    for (auto& v : shard) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return g;
}

/// The scalar reference: fold node 0..N-1 in order, per float — exactly the
/// order every fabric strategy reduces in, so comparisons are bitwise.
std::vector<float> scalar_reference(const std::vector<std::vector<float>>& g) {
  std::vector<float> out(g.front().size(), 0.0f);
  for (const auto& shard : g) {
    for (std::size_t w = 0; w < out.size(); ++w) out[w] += shard[w];
  }
  return out;
}

TEST(Fabric, ReduceStrategyStringsRoundTrip) {
  for (const auto s : {fabric::ReduceStrategy::kDbaMerge,
                       fabric::ReduceStrategy::kPoolStaging,
                       fabric::ReduceStrategy::kPerLink}) {
    const auto back = fabric::reduce_from_string(fabric::to_string(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(fabric::reduce_from_string("ring").has_value());
}

TEST(FabricPool, AdmissionRejectsOverCapacity) {
  fabric::PooledMemory pool(256, 0x1000);
  const auto a = pool.try_carve("a", 0, 100);  // rounds up to 2 lines
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->bytes, 128u);
  const auto b = pool.try_carve("b", 1, 128);
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(a->overlaps(*b));
  EXPECT_EQ(pool.carved_bytes(), 256u);

  // Full: the next carve (and a zero-byte one) must be rejected, counted.
  EXPECT_FALSE(pool.try_carve("c", 2, 64).has_value());
  EXPECT_FALSE(pool.try_carve("d", 3, 0).has_value());
  EXPECT_EQ(pool.admission_rejects(), 2u);
  EXPECT_EQ(pool.carved_bytes(), 256u);
}

TEST(FabricPool, AllReduceCtorSurfacesAdmissionFailure) {
  auto cfg = small_cfg(4, fabric::ReduceStrategy::kDbaMerge);
  cfg.pool_bytes = 4 * cfg.shard_bytes;  // needs (nodes + 1) * shard_bytes
  EXPECT_THROW(fabric::PoolAllReduce ar(cfg), std::runtime_error);
}

TEST(FabricSwitch, ArbitrationIsFairUnderSaturatingPorts) {
  // Two nodes stream concurrently into a pool port with half the private
  // link's bandwidth: both saturate, the switch must split the port evenly
  // and the queueing must be measurable.
  auto cfg = small_cfg(2, fabric::ReduceStrategy::kDbaMerge);
  cfg.shard_bytes = 64 * 64;  // 64 lines per node
  cfg.port_gbps = 8.0;        // node links run at 16 GB/s raw
  fabric::PoolAllReduce ar(cfg);
  const auto g = seeded_gradients(2, ar.shard_floats(), 11);
  ar.set_node_gradients(0, g[0]);
  ar.set_node_gradients(1, g[1]);

  const auto rep = ar.run_step();
  const auto& s0 = ar.fabric_switch().node_stats(0);
  const auto& s1 = ar.fabric_switch().node_stats(1);
  EXPECT_GT(s0.to_pool_bytes, 0u);
  EXPECT_EQ(s0.to_pool_bytes, s1.to_pool_bytes);
  EXPECT_EQ(s0.to_pool_packets, s1.to_pool_packets);
  EXPECT_GT(ar.fabric_switch().to_pool().queue_time, 0.0);
  EXPECT_GT(rep.port_queue_time, 0.0);
  EXPECT_GT(rep.wall(), 0.0);
}

TEST(Fabric, AllReduceMatchesScalarReference) {
  for (const std::uint32_t nodes : {2u, 4u}) {
    for (const auto strategy : {fabric::ReduceStrategy::kDbaMerge,
                                fabric::ReduceStrategy::kPoolStaging,
                                fabric::ReduceStrategy::kPerLink}) {
      auto cfg = small_cfg(nodes, strategy);
      // dirty_bytes = 4 trims to all 16 dirty bytes... i.e. the full line,
      // so steady-state steps stay exact too.
      cfg.dirty_bytes = 4;
      fabric::PoolAllReduce ar(cfg);
      const auto step0 = seeded_gradients(nodes, ar.shard_floats(), 21);
      for (std::uint32_t n = 0; n < nodes; ++n) {
        ar.set_node_gradients(n, step0[n]);
      }
      ar.run_step();
      const auto want0 = scalar_reference(step0);
      for (std::uint32_t n = 0; n < nodes; ++n) {
        EXPECT_EQ(ar.node_result(n), want0)
            << "step 0, strategy " << fabric::to_string(strategy)
            << ", node " << n << "/" << nodes;
      }

      // A steady-state step with fresh gradients (DBA programmed now).
      const auto step1 = seeded_gradients(nodes, ar.shard_floats(), 22);
      for (std::uint32_t n = 0; n < nodes; ++n) {
        ar.set_node_gradients(n, step1[n]);
      }
      ar.run_step();
      const auto want1 = scalar_reference(step1);
      for (std::uint32_t n = 0; n < nodes; ++n) {
        EXPECT_EQ(ar.node_result(n), want1)
            << "step 1, strategy " << fabric::to_string(strategy)
            << ", node " << n << "/" << nodes;
      }
      // Strict per-node protocol checkers rode along the whole way.
      for (std::uint32_t n = 0; n < nodes; ++n) {
        ASSERT_NE(ar.node(n).checker(), nullptr);
        EXPECT_TRUE(ar.node(n).checker()->violations().empty());
      }
    }
  }
}

TEST(Fabric, DbaMergeBeatsPoolStagingUnderContention) {
  for (const std::uint32_t nodes : {2u, 4u}) {
    sim::Time wall[2] = {0.0, 0.0};
    std::uint64_t port_bytes[2] = {0, 0};
    int i = 0;
    for (const auto strategy : {fabric::ReduceStrategy::kDbaMerge,
                                fabric::ReduceStrategy::kPoolStaging}) {
      auto cfg = small_cfg(nodes, strategy);
      cfg.shard_bytes = 16 * 1024;
      cfg.port_gbps = 8.0;  // contended: N node links share one 8 GB/s port
      fabric::PoolAllReduce ar(cfg);
      const auto g = seeded_gradients(nodes, ar.shard_floats(), 31);
      for (std::uint32_t n = 0; n < nodes; ++n) {
        ar.set_node_gradients(n, g[n]);
      }
      ar.run_step();  // warm-up: full-precision seed step
      const auto rep = ar.run_step();  // steady state
      wall[i] = rep.wall();
      port_bytes[i] = rep.to_pool_bytes + rep.from_pool_bytes;
      ++i;
    }
    EXPECT_LT(wall[0], wall[1]) << nodes << " nodes";
    EXPECT_LT(port_bytes[0], port_bytes[1]) << nodes << " nodes";
  }
}

TEST(Fabric, SeededRunReplaysBitIdentically) {
  auto run = [](std::vector<fabric::AllReduceReport>& reps,
                std::vector<float>& result, std::vector<obs::Sample>& samples) {
    auto cfg = small_cfg(3, fabric::ReduceStrategy::kDbaMerge);
    cfg.port_gbps = 12.0;
    fabric::PoolAllReduce ar(cfg);
    for (std::uint32_t step = 0; step < 3; ++step) {
      const auto g =
          seeded_gradients(cfg.nodes, ar.shard_floats(), 40 + step);
      for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
        ar.set_node_gradients(n, g[n]);
      }
      reps.push_back(ar.run_step());
    }
    result = ar.node_result(1);
    samples = ar.registry().samples();
  };

  std::vector<fabric::AllReduceReport> ra, rb;
  std::vector<float> va, vb;
  std::vector<obs::Sample> sa, sb;
  run(ra, va, sa);
  run(rb, vb, sb);

  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].started, rb[i].started);
    EXPECT_EQ(ra[i].push_done, rb[i].push_done);
    EXPECT_EQ(ra[i].reduce_done, rb[i].reduce_done);
    EXPECT_EQ(ra[i].broadcast_done, rb[i].broadcast_done);
    EXPECT_EQ(ra[i].to_pool_bytes, rb[i].to_pool_bytes);
    EXPECT_EQ(ra[i].from_pool_bytes, rb[i].from_pool_bytes);
    EXPECT_EQ(ra[i].port_queue_time, rb[i].port_queue_time);
  }
  EXPECT_EQ(va, vb);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sb[i].name);
    EXPECT_EQ(sa[i].value, sb[i].value);
  }
}

TEST(Fabric, ReduceUnitCatchesDoubleAppliedMerge) {
  fabric::PooledMemory pool(1024, 0x0);
  const auto c0 = pool.try_carve("c0", 0, 64);
  const auto c1 = pool.try_carve("c1", 1, 64);
  const auto res = pool.try_carve("res", fabric::kSharedOwner, 64);
  ASSERT_TRUE(c0 && c1 && res);
  pool.store().write_f32(c0->base, 1.5f);
  pool.store().write_f32(c1->base, 2.25f);

  fabric::ReduceUnit ru(pool, {*c0, *c1}, *res);
  ru.begin_step();
  sim::Time t = ru.fold(0.0, 0, 0);
  t = ru.fold(t, 1, 0);
  EXPECT_FALSE(ru.check_invariants().has_value());
  EXPECT_EQ(ru.accumulator(0)[0], 3.75f);

  ru.fold(t, 1, 0);  // the double-applied merge mutation
  const auto v = ru.check_invariants();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("merge applied 2 times"), std::string::npos);
}

TEST(Fabric, ReduceUnitCatchesLostContributionBytes) {
  fabric::PooledMemory pool(1024, 0x0);
  const auto c0 = pool.try_carve("c0", 0, 64);
  const auto c1 = pool.try_carve("c1", 1, 64);
  const auto res = pool.try_carve("res", fabric::kSharedOwner, 64);
  ASSERT_TRUE(c0 && c1 && res);
  pool.store().write_f32(c0->base, 1.5f);
  pool.store().write_f32(c1->base, 2.25f);

  fabric::ReduceUnit ru(pool, {*c0, *c1}, *res);
  ru.begin_step();
  ru.fold(ru.fold(0.0, 0, 0), 1, 0);
  // A dropped cross-port flit after the fold: the staged bytes change out
  // from under the recorded accumulator.
  pool.store().write_f32(c1->base, 0.0f);
  const auto v = ru.check_invariants();
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("diverged"), std::string::npos);
}

}  // namespace
