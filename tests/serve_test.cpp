// teco::serve — arrival processes, admission control, prefill/decode
// scheduling, KV paging over the shared CXL link, SLO accounting, and
// seeded bit-identical replay.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/arrival.hpp"
#include "serve/kv_cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve.hpp"
#include "tier/placement_planner.hpp"

namespace {

// TECO_OBS=OFF compiles metric recording to no-ops; tests asserting on
// recorded values skip (whole-test) or drop just those assertions.
#ifdef TECO_OBS_DISABLED
#define TECO_SKIP_WITHOUT_OBS() \
  GTEST_SKIP() << "telemetry recording compiled out (TECO_OBS=OFF)"
#else
#define TECO_SKIP_WITHOUT_OBS() (void)0
#endif


using namespace teco;

constexpr std::uint64_t kMiB = 1ull << 20;

TEST(ServeArrival, KindStringsRoundTrip) {
  for (const auto k : {serve::ArrivalKind::kPoisson,
                       serve::ArrivalKind::kBursty,
                       serve::ArrivalKind::kTrace}) {
    const auto back = serve::arrival_from_string(serve::to_string(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(serve::arrival_from_string("uniform").has_value());
}

TEST(ServeArrival, PoissonIsSeededAndRateFaithful) {
  serve::ServeConfig cfg;
  cfg.arrival = serve::ArrivalKind::kPoisson;
  cfg.rate_rps = 64.0;
  cfg.n_requests = 4000;
  cfg.seed = 9;

  serve::ArrivalProcess a(cfg);
  serve::ArrivalProcess b(cfg);
  sim::Time last = 0.0;
  sim::Time final_arrival = 0.0;
  for (;;) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra.has_value()) break;
    // Bit-identical replay, monotone arrival times, sane geometry.
    EXPECT_EQ(ra->arrival, rb->arrival);
    EXPECT_EQ(ra->prompt_tokens, rb->prompt_tokens);
    EXPECT_EQ(ra->decode_tokens, rb->decode_tokens);
    EXPECT_GE(ra->arrival, last);
    EXPECT_GE(ra->prompt_tokens, 16u);
    last = ra->arrival;
    final_arrival = ra->arrival;
  }
  // 4000 arrivals at 64 rps span ~62.5 s; allow generous stochastic slack.
  EXPECT_NEAR(final_arrival, 4000.0 / 64.0, 10.0);
}

TEST(ServeArrival, BurstyPreservesLongRunRate) {
  serve::ServeConfig cfg;
  cfg.arrival = serve::ArrivalKind::kBursty;
  cfg.rate_rps = 64.0;
  cfg.n_requests = 20000;
  cfg.seed = 5;
  serve::ArrivalProcess a(cfg);
  sim::Time final_arrival = 0.0;
  std::size_t n = 0;
  while (const auto r = a.next()) {
    final_arrival = r->arrival;
    ++n;
  }
  ASSERT_EQ(n, cfg.n_requests);
  // The MMPP's calm/burst rates are scaled so the time-averaged offered
  // load still equals rate_rps (within stochastic noise at n = 2e4).
  EXPECT_NEAR(static_cast<double>(n) / final_arrival, 64.0, 6.0);
}

/// Trace helper: n requests at the given arrival times.
serve::ServeConfig trace_config(std::vector<serve::TraceRequest> reqs) {
  serve::ServeConfig cfg;
  cfg.arrival = serve::ArrivalKind::kTrace;
  cfg.trace = std::move(reqs);
  return cfg;
}

TEST(ServeScheduler, AdmissionRejectsBeyondCapacity) {
  // Three simultaneous arrivals into two session slots: the third must be
  // refused and counted against SLO attainment.
  serve::ServeConfig cfg = trace_config({{0.0, 64, 8},
                                         {0.0, 64, 8},
                                         {0.0, 64, 8}});
  cfg.max_sessions = 2;
  serve::ServeScheduler sched(cfg);
  const serve::ServeReport rep = sched.run();

  EXPECT_EQ(rep.offered, 3u);
  EXPECT_EQ(rep.admitted, 2u);
  EXPECT_EQ(rep.rejected, 1u);
  EXPECT_EQ(rep.completed, 2u);
  EXPECT_LE(rep.slo_attained, 2u);
  // Rejections count against the attainment denominator.
  EXPECT_LE(rep.slo_attainment(), 2.0 / 3.0);
#ifndef TECO_OBS_DISABLED
  EXPECT_EQ(sched.registry().value("serve.rejected"), 1.0);
  EXPECT_EQ(sched.registry().value("serve.admitted"), 2.0);
#endif
}

TEST(ServeScheduler, PrefillPrecedesDecodeAndSetsTtft) {
  serve::ServeConfig cfg = trace_config({{0.0, 32, 4}});
  serve::ServeScheduler sched(cfg);
  const serve::ServeReport rep = sched.run();

  EXPECT_EQ(rep.completed, 1u);
  // Prefill emits the first token; three decode iterations finish the rest.
  EXPECT_EQ(rep.tokens_generated, 4u);
#ifndef TECO_OBS_DISABLED
  EXPECT_EQ(sched.registry().value("serve.iterations.prefill"), 1.0);
  EXPECT_EQ(sched.registry().value("serve.iterations.decode"), 3.0);
#endif
  // No queueing, no paging: TTFT is the prefill iteration (up to the
  // histogram's 10 ms bin resolution).
  EXPECT_NEAR(rep.ttft.p50, cfg.cost.prefill_time(cfg.model, 32), 0.011);
  // Makespan = prefill + 3 decode iterations, all back to back.
  EXPECT_GT(rep.makespan, cfg.cost.prefill_time(cfg.model, 32));
  EXPECT_EQ(rep.slo_attained, 1u);
}

TEST(ServeScheduler, KvPagingMeetsDecodeDeadlines) {
  // 12 sessions x ~9.4 MiB of prompt KV (~120 MiB working set) against a
  // 64 MiB HBM budget and a 4-wide decode batch: rotation forces
  // continuous paging, but one batch (~38 MiB) still leaves prefetch
  // headroom. Every decode deadline is met — the batch blocks until its
  // KV is resident — and the lookahead policy hides (most of) the latency
  // the strawman exposes.
  std::vector<serve::TraceRequest> reqs(12, {0.0, 256, 32});
  auto run = [&](tier::Policy policy) {
    serve::ServeConfig cfg = trace_config(reqs);
    cfg.policy = policy;
    cfg.max_batch = 4;
    cfg.hbm_kv_bytes = 96 * kMiB;
    cfg.prefetch_depth = 2;
    serve::ServeScheduler sched(cfg);
    return sched.run();
  };
  const serve::ServeReport naive = run(tier::Policy::kNaiveSwap);
  const serve::ServeReport smart = run(tier::Policy::kMinStall);

  // Both complete every request (paging delays, never deadlocks).
  EXPECT_EQ(naive.completed, 12u);
  EXPECT_EQ(smart.completed, 12u);
  // KV really paged: bytes moved down the link, evictions happened.
  EXPECT_GT(naive.kv_pagein_bytes, 0u);
  EXPECT_GT(smart.kv_pagein_bytes, 0u);
  EXPECT_GT(naive.kv_demand_fetches, 0u);
  // Write-through evictions are clean-copy drops (no wire eviction).
  EXPECT_GT(naive.kv_clean_drops + smart.kv_clean_drops, 0u);
  EXPECT_EQ(naive.kv_evict_bytes, 0u);
  // The lookahead policy actually prefetches, and its exposed stall never
  // exceeds the demand-fetch strawman's.
  EXPECT_GT(smart.kv_prefetches, 0u);
  EXPECT_LE(smart.kv_stall, naive.kv_stall);
  EXPECT_GT(naive.kv_stall, 0.0);
  // The HBM budget was honored up to transient overcommit of one batch.
  EXPECT_GT(naive.hbm_peak_bytes, 0u);
}

TEST(ServeScheduler, KvTrafficSharesLinkWithCoherenceCounters) {
  TECO_SKIP_WITHOUT_OBS();
  // The acceptance check: one run populates BOTH the serve.* namespace and
  // the link's cxl.*/coherence.* namespaces, because KV paging and the
  // write-through stream ride the same cxl::Link.
  std::vector<serve::TraceRequest> reqs(8, {0.0, 256, 16});
  serve::ServeConfig cfg = trace_config(reqs);
  cfg.max_batch = 2;
  cfg.hbm_kv_bytes = 24 * kMiB;
  serve::ServeScheduler sched(cfg);
  sched.run();
  obs::MetricsRegistry& reg = sched.registry();
  EXPECT_GT(reg.value("serve.tokens"), 0.0);
  EXPECT_GT(reg.value("serve.kv.pagein_bytes"), 0.0);
  EXPECT_GT(reg.value("cxl.down.bytes"), 0.0);  // Page-ins.
  EXPECT_GT(reg.value("cxl.up.bytes"), 0.0);    // Write-through pushes.
  EXPECT_GT(reg.value("coherence.s2m.flushdata"), 0.0);
  EXPECT_GT(reg.value("coherence.m2s.msgs"), 0.0);
}

TEST(ServeScheduler, WritethroughOffPaysWireEvictions) {
  std::vector<serve::TraceRequest> reqs(8, {0.0, 256, 16});
  serve::ServeConfig cfg = trace_config(reqs);
  cfg.max_batch = 2;
  cfg.hbm_kv_bytes = 24 * kMiB;
  cfg.kv_writethrough = false;
  serve::ServeScheduler sched(cfg);
  const serve::ServeReport rep = sched.run();
  // Invalidation-style domain: evictions are full transfers, not drops.
  EXPECT_GT(rep.kv_evict_bytes, 0u);
}

TEST(ServeScheduler, SloAccountingMath) {
  serve::ServeConfig cfg;
  cfg.slo_ttft = sim::ms(250);
  cfg.slo_tpot = 0.0;  // Derive: 25 ms per token.
  EXPECT_DOUBLE_EQ(cfg.effective_slo_tpot(), sim::ms(25));

  EXPECT_TRUE(serve::ServeScheduler::attains_slo(cfg, sim::ms(250),
                                                 sim::ms(25)));
  EXPECT_FALSE(serve::ServeScheduler::attains_slo(cfg, sim::ms(251),
                                                  sim::ms(1)));
  EXPECT_FALSE(serve::ServeScheduler::attains_slo(cfg, sim::ms(1),
                                                  sim::ms(26)));
  cfg.slo_tpot = sim::ms(50);
  EXPECT_DOUBLE_EQ(cfg.effective_slo_tpot(), sim::ms(50));
  EXPECT_TRUE(serve::ServeScheduler::attains_slo(cfg, sim::ms(100),
                                                 sim::ms(40)));

  // Report-level arithmetic.
  serve::ServeReport rep;
  rep.offered = 10;
  rep.slo_attained = 7;
  EXPECT_DOUBLE_EQ(rep.slo_attainment(), 0.7);
  rep.completed = 8;
  rep.makespan = 4.0;
  EXPECT_DOUBLE_EQ(rep.goodput_rps(), 2.0);
}

TEST(ServeScheduler, SeededRunReplaysBitIdentically) {
  // The full acceptance property: two schedulers built from one config —
  // bursty arrivals, tight HBM, paging, the lot — produce identical
  // reports AND identical obs registry snapshots, sample for sample.
  serve::ServeConfig cfg;
  cfg.arrival = serve::ArrivalKind::kBursty;
  cfg.rate_rps = 200.0;
  cfg.n_requests = 60;
  cfg.seed = 31;
  cfg.max_batch = 4;
  cfg.max_sessions = 24;
  cfg.hbm_kv_bytes = 48 * kMiB;

  serve::ServeScheduler s1(cfg);
  serve::ServeScheduler s2(cfg);
  const serve::ServeReport r1 = s1.run();
  const serve::ServeReport r2 = s2.run();

  EXPECT_EQ(r1.offered, r2.offered);
  EXPECT_EQ(r1.admitted, r2.admitted);
  EXPECT_EQ(r1.rejected, r2.rejected);
  EXPECT_EQ(r1.completed, r2.completed);
  EXPECT_EQ(r1.slo_attained, r2.slo_attained);
  EXPECT_EQ(r1.tokens_generated, r2.tokens_generated);
  EXPECT_EQ(r1.makespan, r2.makespan);  // Bitwise: same double.
  EXPECT_EQ(r1.ttft.p50, r2.ttft.p50);
  EXPECT_EQ(r1.ttft.p999, r2.ttft.p999);
  EXPECT_EQ(r1.tpot.p99, r2.tpot.p99);
  EXPECT_EQ(r1.kv_pagein_bytes, r2.kv_pagein_bytes);
  EXPECT_EQ(r1.kv_stall, r2.kv_stall);

  const auto snap1 = s1.registry().samples();
  const auto snap2 = s2.registry().samples();
  ASSERT_EQ(snap1.size(), snap2.size());
  for (std::size_t i = 0; i < snap1.size(); ++i) {
    EXPECT_EQ(snap1[i].name, snap2[i].name);
    EXPECT_EQ(snap1[i].value, snap2[i].value) << snap1[i].name;
  }
  // And the snapshot actually contains both namespaces plus p999 samples.
  bool saw_p999 = false;
  for (const auto& s : snap1) saw_p999 |= s.name == "serve.ttft_us.p999";
  EXPECT_TRUE(saw_p999);
}

TEST(ServeVictimOrder, PoliciesRankCandidatesDistinctly) {
  using tier::VictimCandidate;
  // c0: small+hot, c1: large+cold, c2: needed furthest in the future.
  std::vector<VictimCandidate> base = {
      {0, 1 * kMiB, 0.1, 0.1},
      {1, 64 * kMiB, 5.0, 0.2},
      {2, 2 * kMiB, 1.0, 9.0},
  };
  auto v = base;
  tier::order_victims(tier::Policy::kNaiveSwap, v);
  EXPECT_EQ(v[0].id, 0u);  // Id order, no intelligence.

  v = base;
  tier::order_victims(tier::Policy::kMinStall, v);
  EXPECT_EQ(v[0].id, 2u);  // Belady: furthest next use first.

  v = base;
  tier::order_victims(tier::Policy::kKnapsack, v);
  EXPECT_EQ(v[0].id, 1u);  // Byte-seconds: cold-and-large first.
}

}  // namespace
