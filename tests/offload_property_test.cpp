// Cross-cutting invariants of the offload timelines, swept over the full
// runtime x model x batch grid.
#include <gtest/gtest.h>

#include <tuple>

#include "dl/model_zoo.hpp"
#include "offload/experiments.hpp"
#include "offload/runtime.hpp"

namespace teco::offload {
namespace {

const Calibration& cal() { return default_calibration(); }

const std::vector<RuntimeKind>& all_kinds() {
  static const std::vector<RuntimeKind> kinds = {
      RuntimeKind::kZeroOffload, RuntimeKind::kZeroOffloadDpu,
      RuntimeKind::kCxlInvalidation, RuntimeKind::kTecoCxl,
      RuntimeKind::kTecoReduction};
  return kinds;
}

class GridSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint32_t>> {
 protected:
  RuntimeKind kind() const {
    return all_kinds()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  dl::ModelConfig model() const {
    return dl::table3_models()[static_cast<std::size_t>(
        std::get<1>(GetParam()))];
  }
  std::uint32_t batch() const { return std::get<2>(GetParam()); }
};

TEST_P(GridSweep, VolumeConservation) {
  const auto s = simulate_step(kind(), model(), batch(), cal());
  // Gradients always cross in full.
  EXPECT_EQ(s.bytes_to_cpu, model().gradient_bytes());
  // Parameters cross in full except under DBA (half at dirty_bytes = 2).
  if (kind() == RuntimeKind::kTecoReduction) {
    EXPECT_EQ(s.bytes_to_device, model().param_bytes() / 2);
  } else {
    EXPECT_EQ(s.bytes_to_device, model().param_bytes());
  }
}

TEST_P(GridSweep, ExposureBoundedByRawTransferTime) {
  const auto s = simulate_step(kind(), model(), batch(), cal());
  // No runtime can expose more than the serialized transfer + protocol
  // slack (latency, setup, queue round-trips).
  const double slack = 1.2;
  const double raw_param =
      static_cast<double>(model().param_bytes()) /
      (cal().phy.raw_bandwidth * 0.5);  // Worst effective bandwidth bound.
  EXPECT_LE(s.param_transfer_exposed, raw_param * slack + 1e-3);
  const double raw_grad = static_cast<double>(model().gradient_bytes()) /
                          (cal().phy.raw_bandwidth * 0.5);
  EXPECT_LE(s.grad_transfer_exposed, raw_grad * slack + 1e-3);
}

TEST_P(GridSweep, MoreBandwidthNeverHurts) {
  auto fast = cal();
  fast.phy.raw_bandwidth *= 2.0;
  const auto slow_s = simulate_step(kind(), model(), batch(), cal());
  const auto fast_s = simulate_step(kind(), model(), batch(), fast);
  EXPECT_LE(fast_s.total(), slow_s.total() + 1e-9);
}

TEST_P(GridSweep, FasterCpuNeverHurts) {
  auto fast = cal();
  fast.cpu_stream_bw *= 2.0;
  const auto slow_s = simulate_step(kind(), model(), batch(), cal());
  const auto fast_s = simulate_step(kind(), model(), batch(), fast);
  EXPECT_LE(fast_s.total(), slow_s.total() + 1e-9);
}

TEST_P(GridSweep, ComputePhasesIdenticalAcrossRuntimes) {
  // Runtimes differ only in transfer scheduling; fwd/bwd and CPU phase
  // durations must be byte-identical to the baseline's.
  const auto s = simulate_step(kind(), model(), batch(), cal());
  const auto base =
      simulate_step(RuntimeKind::kZeroOffload, model(), batch(), cal());
  EXPECT_DOUBLE_EQ(s.forward_backward, base.forward_backward);
  EXPECT_DOUBLE_EQ(s.grad_optimizer, base.grad_optimizer);
  EXPECT_DOUBLE_EQ(s.param_optimizer, base.param_optimizer);
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimesModelsBatches, GridSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),  // Runtime.
                       ::testing::Values(0, 1, 2, 3, 4),  // Model.
                       ::testing::Values(4u, 8u)));

TEST(ScheduleProperties, TrainingTimeMonotoneInActivationStep) {
  // Later activation -> more TECO-CXL steps -> never faster.
  const auto m = dl::bert_large_cased();
  double prev = 0.0;
  for (const std::size_t act : {0ul, 100ul, 500ul, 900ul}) {
    const double t = schedule_training_time(RuntimeKind::kTecoReduction, m,
                                            4, 1000, act, cal());
    EXPECT_GE(t + 1e-12, prev);
    prev = t;
  }
}

TEST(ScheduleProperties, ActivationBeyondScheduleClamps) {
  const auto m = dl::gpt2();
  const double at_end = schedule_training_time(
      RuntimeKind::kTecoReduction, m, 4, 500, 500, cal());
  const double beyond = schedule_training_time(
      RuntimeKind::kTecoReduction, m, 4, 500, 10'000, cal());
  EXPECT_DOUBLE_EQ(at_end, beyond);
}

TEST(ScheduleProperties, NonReductionKindsIgnoreActivation) {
  const auto m = dl::gpt2();
  const double a = schedule_training_time(RuntimeKind::kTecoCxl, m, 4, 100,
                                          0, cal());
  const double b = schedule_training_time(RuntimeKind::kTecoCxl, m, 4, 100,
                                          50, cal());
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace teco::offload
