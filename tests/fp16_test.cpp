// IEEE binary16 conversion tests (mixed-precision path, Section V).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "dl/dba_training.hpp"
#include "dl/fp16.hpp"
#include "sim/rng.hpp"

namespace teco::dl {
namespace {

TEST(Fp16, KnownValues) {
  EXPECT_EQ(f32_to_f16_bits(0.0f), 0x0000u);
  EXPECT_EQ(f32_to_f16_bits(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_f16_bits(1.0f), 0x3C00u);
  EXPECT_EQ(f32_to_f16_bits(-2.0f), 0xC000u);
  EXPECT_EQ(f32_to_f16_bits(65504.0f), 0x7BFFu);  // Max finite half.
  EXPECT_EQ(f32_to_f16_bits(0.5f), 0x3800u);
  EXPECT_EQ(f32_to_f16_bits(0.099975586f), 0x2E66u);  // ~0.1 in half.
}

TEST(Fp16, InfAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f32_to_f16_bits(inf), 0x7C00u);
  EXPECT_EQ(f32_to_f16_bits(-inf), 0xFC00u);
  EXPECT_EQ(f32_to_f16_bits(65536.0f), 0x7C00u);  // Overflow -> inf.
  const auto nan_bits = f32_to_f16_bits(std::nanf(""));
  EXPECT_EQ(nan_bits & 0x7C00u, 0x7C00u);
  EXPECT_NE(nan_bits & 0x03FFu, 0u);  // NaN payload preserved.
  EXPECT_TRUE(std::isnan(f16_bits_to_f32(0x7E00u)));
  EXPECT_TRUE(std::isinf(f16_bits_to_f32(0x7C00u)));
}

TEST(Fp16, Subnormals) {
  // Smallest positive half subnormal: 2^-24.
  EXPECT_EQ(f32_to_f16_bits(5.9604645e-8f), 0x0001u);
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x0001u), 5.9604645e-8f);
  // Largest subnormal: (1023/1024) * 2^-14.
  EXPECT_FLOAT_EQ(f16_bits_to_f32(0x03FFu), 6.097555e-5f);
  // Underflow to zero.
  EXPECT_EQ(f32_to_f16_bits(1e-12f), 0x0000u);
  EXPECT_EQ(f32_to_f16_bits(-1e-12f), 0x8000u);
}

TEST(Fp16, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
  // ties to even -> 1.0 (mantissa even).
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1.0p-11f), 0x3C00u);
  // 1 + 3*2^-11 ties between odd/even -> rounds up to even mantissa 2.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 3.0f * 0x1.0p-11f), 0x3C02u);
  // Just above the tie rounds up.
  EXPECT_EQ(f32_to_f16_bits(1.0f + 0x1.2p-11f), 0x3C01u);
}

TEST(Fp16, RoundTripAllHalfValues) {
  // Every finite half value must survive f16 -> f32 -> f16 exactly.
  for (std::uint32_t h = 0; h < 0x10000u; ++h) {
    const auto bits = static_cast<std::uint16_t>(h);
    if (((bits >> 10) & 0x1Fu) == 0x1Fu) continue;  // Skip inf/NaN.
    const float f = f16_bits_to_f32(bits);
    ASSERT_EQ(f32_to_f16_bits(f), bits) << "half bits " << h;
  }
}

TEST(Fp16, RoundingErrorBounded) {
  sim::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto f = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float r = fp16_round(f);
    // Relative error of round-to-nearest half is <= 2^-11.
    EXPECT_LE(std::abs(r - f), std::abs(f) * 0x1.0p-11f + 1e-7f);
  }
}

TEST(Fp16, ArrayRounding) {
  std::vector<float> v = {1.0f, 0.1f, 12345.678f};
  fp16_round_array(v);
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], f16_bits_to_f32(f32_to_f16_bits(0.1f)));
  EXPECT_FLOAT_EQ(v[2], f16_bits_to_f32(f32_to_f16_bits(12345.678f)));
}

TEST(Fp16, MixedPrecisionTrainingConverges) {
  const auto task = make_classification_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 400;
  cfg.batch_size = 32;
  cfg.mixed_precision = true;
  const auto res = run_training(task, cfg);
  EXPECT_GT(res.final_metric, 0.7f);
}

TEST(Fp16, DbaComposesWithMixedPrecision) {
  // Section V: the CPU->GPU transfer stays FP32, so DBA still applies; the
  // FP16 conversion happens after the merge. Quality must stay close to
  // the mixed-precision run without DBA.
  const auto task = make_classification_task();
  TrainRunConfig cfg;
  cfg.model = default_model_for(task);
  cfg.steps = 600;
  cfg.batch_size = 32;
  cfg.mixed_precision = true;
  const auto plain = run_training(task, cfg);
  auto dba_cfg = cfg;
  dba_cfg.dba_enabled = true;
  dba_cfg.act_aft_steps = 300;
  const auto dba = run_training(task, dba_cfg);
  EXPECT_NEAR(dba.final_metric, plain.final_metric, 0.08f);
}

}  // namespace
}  // namespace teco::dl
