// obs::causal — provenance through sim::EventQueue, the bounded causal
// DAG, critical-path extraction with its hard conservation guarantee, the
// Perfetto flow-arrow export, and the end-to-end wiring: a core::Session
// training step, a serve request's TTFT window, one fabric all-reduce and
// the tiered activation timeline must all attribute their interval with
// category sums that reconcile exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/trace_export.hpp"
#include "fabric/allreduce.hpp"
#include "obs/causal.hpp"
#include "obs/span.hpp"
#include "offload/activation_timeline.hpp"
#include "serve/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace {

using namespace teco;
using obs::causal::Attribution;
using obs::causal::CausalGraph;
using obs::causal::Category;

constexpr std::uint64_t kMiB = 1ull << 20;

TEST(CausalGraph, ExplicitAndParentDerivedWindows) {
  CausalGraph g;
  const auto a = g.add(Category::kCompute, 2.0, sim::kNoCausalNode, 0.0);
  const auto b = g.add(Category::kFenceDrain, 3.0, a);  // from = a.when.
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.node(a).parent, sim::kNoCausalNode);
  EXPECT_DOUBLE_EQ(g.node(a).scheduled, 0.0);
  EXPECT_DOUBLE_EQ(g.node(a).when, 2.0);
  EXPECT_EQ(g.node(b).parent, a);
  EXPECT_EQ(g.node(b).cat, Category::kFenceDrain);
  EXPECT_DOUBLE_EQ(g.node(b).scheduled, 2.0);
  EXPECT_DOUBLE_EQ(g.node(b).when, 3.0);
}

TEST(CausalGraph, BoundDropsNodesAndCounts) {
  CausalGraph g(2);
  EXPECT_NE(g.add(Category::kCompute, 1.0), sim::kNoCausalNode);
  EXPECT_NE(g.add(Category::kCompute, 2.0), sim::kNoCausalNode);
  EXPECT_EQ(g.add(Category::kCompute, 3.0), sim::kNoCausalNode);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.dropped(), 1u);
  g.clear();
  EXPECT_EQ(g.dropped(), 0u);
  EXPECT_NE(g.add(Category::kCompute, 1.0), sim::kNoCausalNode);
}

#ifndef TECO_OBS_DISABLED
TEST(CausalGraph, EventQueueRecordsParentAndTag) {
  CausalGraph g;
  sim::EventQueue q;
  q.set_causal_sink(&g);
  std::uint32_t inner = sim::kNoCausalNode;
  {
    sim::TagScope tag(q, obs::causal::tag(Category::kCxlUp));
    q.schedule_at(1.0, [&] {
      // The child event scheduled from inside a callback inherits the
      // executing event's node as its parent, and the tag active *at
      // schedule time*.
      sim::TagScope inner_tag(q, obs::causal::tag(Category::kFenceDrain));
      q.schedule_at(3.0, [] {});
      inner = q.current_node();
    });
  }
  q.run();
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(inner, 0u);  // The first scheduled event got node id 0.
  EXPECT_EQ(g.node(0).parent, sim::kNoCausalNode);
  EXPECT_EQ(g.node(0).cat, Category::kCxlUp);
  EXPECT_DOUBLE_EQ(g.node(0).scheduled, 0.0);
  EXPECT_DOUBLE_EQ(g.node(0).when, 1.0);
  EXPECT_EQ(g.node(1).parent, 0u);
  EXPECT_EQ(g.node(1).cat, Category::kFenceDrain);
  EXPECT_DOUBLE_EQ(g.node(1).scheduled, 1.0);
  EXPECT_DOUBLE_EQ(g.node(1).when, 3.0);
}

TEST(CausalGraph, TagScopeNestsAndRestores) {
  sim::EventQueue q;
  EXPECT_EQ(q.current_tag(), 0u);
  {
    sim::TagScope outer(q, obs::causal::tag(Category::kCxlDown));
    EXPECT_EQ(q.current_tag(), obs::causal::tag(Category::kCxlDown));
    {
      sim::TagScope inner(q, obs::causal::tag(Category::kPoolReduce));
      EXPECT_EQ(q.current_tag(), obs::causal::tag(Category::kPoolReduce));
    }
    EXPECT_EQ(q.current_tag(), obs::causal::tag(Category::kCxlDown));
  }
  EXPECT_EQ(q.current_tag(), 0u);
}
#endif  // TECO_OBS_DISABLED

TEST(CriticalPath, BackWalkPartitionsIntervalWithIdleFill) {
  CausalGraph g;
  const auto a = g.add(Category::kCompute, 2.0, sim::kNoCausalNode, 0.0);
  const auto b = g.add(Category::kFenceDrain, 4.0, a, 3.0);
  const Attribution attr = obs::causal::critical_path(g, 0.0, 5.0, b);
  ASSERT_EQ(attr.segments.size(), 3u);
  // The fence hop claims its window [3,4]; the compute hop stretches to
  // the fence's start (the chain was in flight); [4,5] past the terminal
  // is idle fill.
  EXPECT_EQ(attr.segments[0].cat, Category::kCompute);
  EXPECT_DOUBLE_EQ(attr.segments[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(attr.segments[0].end, 3.0);
  EXPECT_EQ(attr.segments[1].cat, Category::kFenceDrain);
  EXPECT_DOUBLE_EQ(attr.segments[1].end, 4.0);
  EXPECT_EQ(attr.segments[2].cat, Category::kIdle);
  EXPECT_DOUBLE_EQ(attr.segments[2].end, 5.0);
  EXPECT_DOUBLE_EQ(attr.of(Category::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(attr.of(Category::kFenceDrain), 1.0);
  EXPECT_DOUBLE_EQ(attr.of(Category::kIdle), 1.0);
  EXPECT_TRUE(attr.conserved());
}

TEST(CriticalPath, NoTerminalFillsWholeInterval) {
  CausalGraph g;
  const Attribution attr =
      obs::causal::critical_path(g, 1.0, 4.0, sim::kNoCausalNode);
  ASSERT_EQ(attr.segments.size(), 1u);
  EXPECT_EQ(attr.segments[0].cat, Category::kIdle);
  EXPECT_DOUBLE_EQ(attr.of(Category::kIdle), 3.0);
  EXPECT_TRUE(attr.conserved());
}

TEST(CriticalPath, WhySlowReportsSortedShares) {
  CausalGraph g;
  const auto a = g.add(Category::kCxlUp, 3.0, sim::kNoCausalNode, 0.0);
  const auto b = g.add(Category::kCompute, 4.0, a, 3.0);
  const Attribution attr = obs::causal::critical_path(g, 0.0, 4.0, b);
  const std::string r = attr.why_slow("unit");
  EXPECT_NE(r.find("why-slow: unit"), std::string::npos);
  EXPECT_NE(r.find("total 4000000.000 us"), std::string::npos);
  // cxl_up (75%) sorts above compute (25%).
  EXPECT_LT(r.find("cxl_up"), r.find("compute"));
  EXPECT_NE(r.find("75.0%"), std::string::npos);
  EXPECT_NE(r.find("critical path: 2 hops, 2 segments"), std::string::npos);
}

TEST(TraceBuffer, SpanCapDropsAndCounts) {
  obs::TraceBuffer buf;
  EXPECT_EQ(buf.max_spans(), obs::TraceBuffer::kDefaultMaxSpans);
  buf.set_max_spans(2);
  buf.emit("l", "a", 0.0, 1.0);
  buf.emit("l", "b", 1.0, 2.0);
  buf.emit("l", "c", 2.0, 3.0);  // Past the cap: dropped, counted.
  EXPECT_EQ(buf.events().size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
  buf.clear();
  EXPECT_EQ(buf.dropped(), 0u);
  buf.emit("l", "d", 0.0, 1.0);
  EXPECT_EQ(buf.events().size(), 1u);
}

TEST(ChromeTrace, CriticalPathFlowEventsGoldenJson) {
  CausalGraph g;
  const auto a =
      g.add(Category::kCompute, sim::us(1.0), sim::kNoCausalNode, 0.0);
  const auto b = g.add(Category::kCxlUp, sim::us(2.0), a, sim::us(1.0));
  const Attribution attr =
      obs::causal::critical_path(g, 0.0, sim::us(3.0), b);
  core::ChromeTraceComposer c;
  c.add_critical_path(attr, "cp", /*pid=*/3);
  // Exact golden: three category lanes with their slices, then ONE flow
  // pair (compute -> cxl_up; arrows never chain into idle fill). "s"
  // binds at the source slice end, "f" (bp:"e") at the destination begin
  // — the same instant, since path segments are adjacent by construction.
  const std::string golden = R"([
{"name":"process_name","ph":"M","pid":3,"tid":0,"args":{"name":"cp"}},
{"name":"thread_name","ph":"M","pid":3,"tid":1,"args":{"name":"critpath.compute"}},
{"name":"thread_sort_index","ph":"M","pid":3,"tid":1,"args":{"sort_index":1}},
{"name":"compute","cat":"critpath","ph":"X","pid":3,"tid":1,"ts":0.000,"dur":1.000},
{"name":"thread_name","ph":"M","pid":3,"tid":2,"args":{"name":"critpath.cxl_up"}},
{"name":"thread_sort_index","ph":"M","pid":3,"tid":2,"args":{"sort_index":2}},
{"name":"cxl_up","cat":"critpath","ph":"X","pid":3,"tid":2,"ts":1.000,"dur":1.000},
{"name":"thread_name","ph":"M","pid":3,"tid":3,"args":{"name":"critpath.idle"}},
{"name":"thread_sort_index","ph":"M","pid":3,"tid":3,"args":{"sort_index":3}},
{"name":"idle","cat":"critpath","ph":"X","pid":3,"tid":3,"ts":2.000,"dur":1.000},
{"name":"critpath","cat":"critpath","ph":"s","id":1,"pid":3,"tid":1,"ts":1.000},
{"name":"critpath","cat":"critpath","ph":"f","bp":"e","id":1,"pid":3,"tid":2,"ts":1.000}
]
)";
  EXPECT_EQ(c.json(), golden);
}

core::SessionConfig causal_session_config() {
  core::SessionConfig cfg;
  cfg.protocol = coherence::Protocol::kUpdate;
  cfg.dba_enabled = true;
  cfg.act_aft_steps = 2;
  cfg.dirty_bytes = 2;
  cfg.obs_causal = true;
  return cfg;
}

// Both SessionCausal tests read obs-backed state (the session's causal
// graph and registry counters), all of which compiles out under
// -DTECO_OBS=OFF.
#ifndef TECO_OBS_DISABLED
TEST(SessionCausal, TrainingStepAttributionConserves) {
  core::Session s(causal_session_config());
  ASSERT_NE(s.causal(), nullptr);
  const auto params = s.allocate_parameters("w", 4096);
  const auto grads = s.allocate_gradients("g", 4096);
  std::vector<float> p(1024, 1.0f), g(1024, 0.5f);
  s.device_write_gradients(grads, g);
  s.advance(sim::us(50.0));  // A compute block inside the step.
  s.backward_complete();
  s.cpu_write_parameters(params, p);
  s.optimizer_step_complete();

  const Attribution& attr = s.step_attribution();
  EXPECT_TRUE(attr.conserved());
  // First step: the attribution covers [0, now] — the whole step.
  EXPECT_DOUBLE_EQ(attr.begin, 0.0);
  EXPECT_DOUBLE_EQ(attr.end, s.now());
  EXPECT_NE(s.causal_tail(), sim::kNoCausalNode);
  EXPECT_GT(attr.of(Category::kCompute), 0.0);  // The advance() block.
  // Both fences drained real traffic: link occupancy must be on the path.
  EXPECT_GT(attr.of(Category::kCxlUp) + attr.of(Category::kCxlDown), 0.0);
  // The obs.critpath.* counters carry the same split in microseconds.
  double sum_us = 0.0;
  for (std::size_t i = 0; i < obs::causal::kNumCategories; ++i) {
    sum_us += s.metrics().value(
        std::string("obs.critpath.") +
        obs::causal::metric_suffix(static_cast<Category>(i)));
  }
  EXPECT_NEAR(sum_us, s.now() * 1e6, 1e-6);
}

TEST(SessionCausal, TraceBufferCapCountsDroppedSpans) {
  auto cfg = causal_session_config();
  cfg.obs_trace_max_spans = 1;  // First span only; the rest are dropped.
  core::Session s(cfg);
  const auto params = s.allocate_parameters("w", 4096);
  s.cpu_write_parameters(params, std::vector<float>(1024, 1.0f));
  s.optimizer_step_complete();
  EXPECT_GT(s.metrics().value("obs.trace.dropped_spans"), 0.0);
}
#endif  // TECO_OBS_DISABLED

serve::ServeConfig causal_serve_config() {
  serve::ServeConfig cfg;
  cfg.n_requests = 40;
  cfg.rate_rps = 200.0;
  cfg.seed = 3;
  cfg.max_batch = 8;
  cfg.hbm_kv_bytes = 24 * kMiB;  // Tight: forces paging stalls.
  return cfg;
}

TEST(ServeCausal, TtftWindowsConserve) {
  CausalGraph g;
  serve::ServeScheduler sched(causal_serve_config());
  sched.set_causal(&g);
  const auto report = sched.run();
  ASSERT_GT(report.completed, 0u);
  ASSERT_FALSE(sched.ttft_records().empty());
  for (const auto& rec : sched.ttft_records()) {
    const Attribution attr =
        obs::causal::critical_path(g, rec.arrival, rec.first_token,
                                   rec.terminal);
    EXPECT_TRUE(attr.conserved());
    EXPECT_DOUBLE_EQ(attr.total(), rec.first_token - rec.arrival);
    // Every request's first token sits behind at least some prefill
    // compute on its critical path.
    EXPECT_GT(attr.of(Category::kCompute), 0.0);
  }
}

TEST(ServeCausal, SeededDoubleRunIsBitIdentical) {
  CausalGraph g1, g2;
  {
    serve::ServeScheduler s1(causal_serve_config());
    s1.set_causal(&g1);
    s1.run();
  }
  {
    serve::ServeScheduler s2(causal_serve_config());
    s2.set_causal(&g2);
    s2.run();
  }
  ASSERT_GT(g1.size(), 0u);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::uint32_t i = 0; i < g1.size(); ++i) {
    const auto& a = g1.node(i);
    const auto& b = g2.node(i);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.cat, b.cat);
    // Bitwise, not approximate: the DAG rides the (time, seq) FIFO
    // contract, so replay must reproduce every timestamp exactly.
    EXPECT_EQ(a.scheduled, b.scheduled);
    EXPECT_EQ(a.when, b.when);
  }
}

TEST(FabricCausal, AllReduceAttributionConserves) {
  fabric::FabricConfig cfg;
  cfg.nodes = 3;
  cfg.reduce = fabric::ReduceStrategy::kDbaMerge;
  cfg.shard_bytes = 512;
  cfg.pool_bytes = 1ull << 20;
  fabric::PoolAllReduce ar(cfg);
  CausalGraph g;
  ar.set_causal(&g);
  sim::Rng rng(7);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    std::vector<float> shard(ar.shard_floats());
    for (auto& v : shard) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    ar.set_node_gradients(n, shard);
  }
  for (int step = 0; step < 2; ++step) {
    const auto r = ar.run_step();
    EXPECT_TRUE(r.attribution.conserved());
    EXPECT_DOUBLE_EQ(r.attribution.total(), r.wall());
    EXPECT_NE(r.causal_tail, sim::kNoCausalNode);
    // The near-memory reduction is always a distinct phase on the path.
    EXPECT_GT(r.attribution.of(Category::kPoolReduce), 0.0);
    // Push + broadcast occupancy (plus any switch queueing) covers the
    // rest of the wall time.
    EXPECT_GT(r.attribution.of(Category::kCxlUp), 0.0);
    EXPECT_GT(r.attribution.of(Category::kCxlDown), 0.0);
  }
  EXPECT_GT(g.size(), 0u);  // Stream events carried provenance too.
}

TEST(TimelineCausal, ActivationStepAttributionConserves) {
  CausalGraph g;
  const auto& cal = offload::default_calibration();
  auto model = dl::gpt2();
  model.seq_len = 4096;
  offload::ActivationTimelineOptions opts;
  opts.policy = tier::Policy::kMinStall;
  opts.hbm_bytes = 16ull << 30;
  opts.giant_cache_bytes = 4ull << 30;
  opts.causal = &g;
  const auto r = offload::simulate_activation_step(model, 8, cal, opts);
  EXPECT_TRUE(r.attribution.conserved());
  EXPECT_DOUBLE_EQ(r.attribution.total(), r.step_total);
  EXPECT_NE(r.causal_tail, sim::kNoCausalNode);
  EXPECT_GT(r.attribution.of(Category::kCompute), 0.0);
  // 16 GiB is past-OOM for seq 4096: migration stalls must be on the path,
  // and the DBA-on parameter stream still leaves a fence-drain residue.
  EXPECT_GT(r.attribution.of(Category::kDemandFetch) +
                r.attribution.of(Category::kEvictStall),
            0.0);
  EXPECT_GT(r.attribution.of(Category::kFenceDrain), 0.0);
}

}  // namespace
