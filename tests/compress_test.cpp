// LZ4 codec + compression cost-model tests.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "compress/lz4.hpp"
#include "compress/param_corpus.hpp"
#include "compress/quant_model.hpp"
#include "dl/model_zoo.hpp"
#include "offload/calibration.hpp"
#include "offload/runtime.hpp"
#include "sim/rng.hpp"

namespace teco::compress {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

void expect_roundtrip(const std::vector<std::uint8_t>& src) {
  const auto c = lz4_compress(src);
  const auto d = lz4_decompress(c, src.size());
  ASSERT_EQ(d.size(), src.size());
  EXPECT_EQ(d, src);
}

TEST(Lz4, EmptyInput) {
  expect_roundtrip({});
  EXPECT_TRUE(lz4_compress({}).empty());
}

TEST(Lz4, TinyInputsStayLiteral) {
  for (std::size_t n = 1; n <= 20; ++n) {
    std::vector<std::uint8_t> src(n);
    for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<std::uint8_t>(i);
    expect_roundtrip(src);
  }
}

TEST(Lz4, RepetitiveDataCompressesHard) {
  std::vector<std::uint8_t> src(100000, 0xAB);
  const auto c = lz4_compress(src);
  EXPECT_LT(c.size(), src.size() / 50);
  expect_roundtrip(src);
}

TEST(Lz4, TextLikeData) {
  std::string s;
  for (int i = 0; i < 500; ++i) {
    s += "the quick brown fox jumps over the lazy dog ";
  }
  const auto src = bytes_of(s);
  const auto c = lz4_compress(src);
  EXPECT_LT(c.size(), src.size() / 3);
  expect_roundtrip(src);
}

TEST(Lz4, RandomDataDoesNotExplode) {
  sim::Rng rng(1);
  std::vector<std::uint8_t> src(65536);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto c = lz4_compress(src);
  EXPECT_LT(c.size(), src.size() + src.size() / 128 + 64);
  expect_roundtrip(src);
}

TEST(Lz4, LongLiteralRunsUseExtendedLengths) {
  // > 255 literals before a match forces the 255-run length encoding.
  sim::Rng rng(2);
  std::vector<std::uint8_t> src;
  for (int i = 0; i < 1000; ++i) {
    src.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  for (int i = 0; i < 64; ++i) src.push_back(0x55);  // Then a match source.
  for (int i = 0; i < 64; ++i) src.push_back(0x55);
  expect_roundtrip(src);
}

TEST(Lz4, OverlappingMatchDecodes) {
  // RLE-style: match offset 1, long length — the classic overlap case.
  std::vector<std::uint8_t> src(5000, 0x77);
  src[0] = 0x12;  // Break uniformity at the head.
  expect_roundtrip(src);
}

TEST(Lz4, MalformedInputThrows) {
  // Token promising more literals than present.
  std::vector<std::uint8_t> bogus = {0xF0};  // 15 literals, none follow.
  EXPECT_THROW((void)lz4_decompress(bogus, 100), std::runtime_error);
  // Offset pointing before the start of output.
  std::vector<std::uint8_t> bad_offset = {0x10, 'a', 0x09, 0x00};
  EXPECT_THROW((void)lz4_decompress(bad_offset, 100), std::runtime_error);
  // Size mismatch.
  const auto c = lz4_compress(bytes_of("hello world, hello world, hello"));
  EXPECT_THROW((void)lz4_decompress(c, 7), std::runtime_error);
}

class Lz4RoundTrip
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Lz4RoundTrip, MixedEntropyBuffers) {
  const auto [size, seed] = GetParam();
  sim::Rng rng(seed);
  std::vector<std::uint8_t> src(size);
  std::size_t i = 0;
  while (i < size) {
    if (rng.next_bool(0.3)) {  // Compressible run.
      const auto b = static_cast<std::uint8_t>(rng.next_below(4));
      const std::size_t run = 8 + rng.next_below(200);
      for (std::size_t k = 0; k < run && i < size; ++k) src[i++] = b;
    } else {
      src[i++] = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  expect_roundtrip(src);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, Lz4RoundTrip,
    ::testing::Combine(::testing::Values<std::size_t>(1, 13, 64, 1000, 65536,
                                                      300000),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(ParamCorpus, RatiosMatchTableVIII) {
  // Paper Table VIII compression savings: GPT2 5 %, Albert 0 %, Bert 0 %,
  // T5 36 %. Our corpora + real codec must land in those neighborhoods.
  const double expected_savings[] = {0.05, 0.0, 0.0, 0.36};
  const auto specs = table8_corpora();
  ASSERT_EQ(specs.size(), 4u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto corpus = make_param_corpus(specs[i], 1 << 20);
    const double saving = 1.0 - compression_ratio(corpus);
    EXPECT_NEAR(saving, expected_savings[i], 0.05) << specs[i].model;
  }
}

TEST(ParamCorpus, DeterministicFromSeed) {
  const auto a = make_param_corpus(table8_corpora()[0], 4096);
  const auto b = make_param_corpus(table8_corpora()[0], 4096);
  EXPECT_EQ(a, b);
}

TEST(QuantModel, Lz4PathSlowerThanTeco) {
  // Table VIII conclusion: LZ4-instead-of-DBA costs >= ~2x training time.
  const auto& cal = offload::default_calibration();
  for (const auto& m : {dl::gpt2(), dl::bert_large_cased(), dl::t5_large()}) {
    const auto teco = offload::simulate_step(
        offload::RuntimeKind::kTecoReduction, m, 4, cal);
    Lz4PathConfig lz4;
    lz4.ratio = 0.95;
    lz4.compress_bw = 2.0e9;
    const auto t = lz4_step_time(m, 4, cal, lz4);
    EXPECT_GT(t / teco.total(), 1.5) << m.name;
  }
}

TEST(QuantModel, BetterRatioOrBandwidthHelps) {
  const auto& cal = offload::default_calibration();
  const auto m = dl::bert_large_cased();
  Lz4PathConfig slow{0.95, 1.0e9, 20e9};
  Lz4PathConfig fast{0.95, 8.0e9, 20e9};
  EXPECT_LT(lz4_step_time(m, 4, cal, fast), lz4_step_time(m, 4, cal, slow));
}

TEST(QuantModel, ZeroQuantRatioNearTableVII) {
  const auto row = table7_training_hours();
  EXPECT_GT(row.teco_hours, 0.5);
  EXPECT_LT(row.teco_hours, 6.0);
  // Paper: 5.8 h vs 2.03 h => 2.86x.
  EXPECT_NEAR(row.ratio, 2.86, 0.6);
  EXPECT_GT(row.zeroquant_hours, row.teco_hours);
}

}  // namespace
}  // namespace teco::compress
