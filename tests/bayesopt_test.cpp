// Bayesian-optimizer tests (the act_aft_steps tuner substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/bayesopt.hpp"

namespace teco::sim {
namespace {

TEST(BayesOpt, RejectsBadInterval) {
  EXPECT_THROW(BayesOpt1D(1.0, 1.0), std::invalid_argument);
  BayesOptConfig cfg;
  cfg.init_samples = 0;
  EXPECT_THROW(BayesOpt1D(0.0, 1.0, cfg), std::invalid_argument);
}

TEST(BayesOpt, FindsSmoothUnimodalMaximum) {
  BayesOpt1D bo(0.0, 10.0);
  const double best = bo.maximize(
      [](double x) { return -(x - 6.5) * (x - 6.5); });
  EXPECT_NEAR(best, 6.5, 0.6);
  EXPECT_NEAR(bo.best_y(), 0.0, 0.5);
}

TEST(BayesOpt, HandlesAsymmetricPlateau) {
  // Objective like the act_aft_steps trade-off: rises fast, then a gentle
  // decaying plateau. The optimum sits at the knee.
  BayesOpt1D bo(0.0, 1000.0);
  const double best = bo.maximize([](double x) {
    const double quality = 1.0 - std::exp(-x / 80.0);  // Saturates by ~300.
    const double speed = 1.0 - 0.0004 * x;             // Slow decay.
    return quality + speed;
  });
  EXPECT_GT(best, 100.0);
  EXPECT_LT(best, 800.0);
}

TEST(BayesOpt, PosteriorInterpolatesObservations) {
  BayesOptConfig cfg;
  cfg.init_samples = 3;
  cfg.iterations = 0;
  BayesOpt1D bo(0.0, 1.0, cfg);
  bo.maximize([](double x) { return std::sin(6.0 * x); });
  for (const auto& o : bo.observations()) {
    double mu, var;
    bo.posterior(o.x, &mu, &var);
    EXPECT_NEAR(mu, o.y, 0.02);     // Near-interpolation (tiny noise).
    EXPECT_LT(var, 0.01);           // Confident at observed points.
  }
  // Far from data the posterior is uncertain.
  double mu, var;
  bo.posterior(10.0, &mu, &var);  // Outside [0,1] -> far in unit space.
  EXPECT_GT(var, 0.5);
}

TEST(BayesOpt, DeterministicForFixedSeed) {
  auto run = [] {
    BayesOpt1D bo(0.0, 5.0);
    return bo.maximize([](double x) { return -std::abs(x - 2.0); });
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(BayesOpt, UsesAtMostConfiguredEvaluations) {
  BayesOptConfig cfg;
  cfg.init_samples = 3;
  cfg.iterations = 4;
  BayesOpt1D bo(0.0, 1.0, cfg);
  int evals = 0;
  bo.maximize([&](double x) {
    ++evals;
    return -x * x;
  });
  EXPECT_LE(evals, 7);
  EXPECT_GE(evals, 3);
}

}  // namespace
}  // namespace teco::sim
