// ProtocolChecker tests: the full MESI transition matrix through the
// checker, negative tests proving each invariant actually fires, and
// positive end-to-end flows that must stay silent.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "check/protocol_checker.hpp"
#include "coherence/giant_cache.hpp"
#include "coherence/home_agent.hpp"
#include "coherence/mesi.hpp"
#include "core/config.hpp"
#include "core/session.hpp"
#include "cxl/link.hpp"
#include "dba/dba_register.hpp"
#include "dba/disaggregator.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"

namespace teco::check {
namespace {

using coherence::GiantCache;
using coherence::HomeAgent;
using coherence::MesiState;
using coherence::Protocol;
using mem::Addr;

constexpr Addr kParamBase = 0x1000;
constexpr std::uint64_t kParamBytes = 64 * 16;
constexpr Addr kGradBase = 0x10000;
constexpr std::uint64_t kGradBytes = 64 * 8;

constexpr std::array<MesiState, 4> kAllStates = {
    MesiState::kInvalid, MesiState::kShared, MesiState::kExclusive,
    MesiState::kModified};

/// Domain without a checker; tests attach one at the moment they choose,
/// so pre-attach setup can reach arbitrary states without being judged.
struct Domain {
  explicit Domain(Protocol proto, dba::DbaRegister dba = {})
      : gc(1ull << 20), cpu_cache(mem::llc_config()) {
    HomeAgent::Options opts;
    opts.protocol = proto;
    opts.dba = dba;
    opts.cpu_mem = &cpu_mem;
    opts.device_mem = &device_mem;
    gc.map_region("params", kParamBase, kParamBytes, MesiState::kExclusive,
                  /*dba_eligible=*/true);
    gc.map_region("grads", kGradBase, kGradBytes, MesiState::kExclusive,
                  /*dba_eligible=*/false);
    agent = std::make_unique<HomeAgent>(link, gc, cpu_cache, opts);
  }

  std::unique_ptr<ProtocolChecker> attach(
      CheckLevel level = CheckLevel::kStrict) {
    ProtocolChecker::Options copts;
    copts.level = level;
    copts.cpu_mem = &cpu_mem;
    copts.device_mem = &device_mem;
    return std::make_unique<ProtocolChecker>(*agent, copts);
  }

  cxl::Link link;
  GiantCache gc;
  mem::Cache cpu_cache;
  mem::BackingStore cpu_mem, device_mem;
  std::unique_ptr<HomeAgent> agent;
};

ViolationKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ProtocolViolation& v) {
    return v.kind();
  }
  ADD_FAILURE() << "expected a ProtocolViolation";
  return ViolationKind::kSwmr;
}

// --- Invariant (b): the full transition matrix -----------------------------

TEST(TransitionMatrix, ExternalPokesMatchLegalTransition) {
  // 16 from->to pairs x both protocols, judged by the checker on an
  // external (no-op-scope) giant-cache poke. The checker must accept
  // exactly legal_transition: in particular M->S passes under kUpdate
  // (Fig. 4's red arrow) and fires under kInvalidation.
  for (const Protocol proto : {Protocol::kUpdate, Protocol::kInvalidation}) {
    for (const MesiState from : kAllStates) {
      for (const MesiState to : kAllStates) {
        Domain d(proto);
        d.gc.set_state(kParamBase, from);  // Pre-attach: not judged.
        auto checker = d.attach();
        const bool legal = coherence::legal_transition(proto, from, to);
        if (legal) {
          EXPECT_NO_THROW(d.gc.set_state(kParamBase, to))
              << to_string(from) << "->" << to_string(to)
              << (proto == Protocol::kUpdate ? " update" : " invalidation");
          EXPECT_EQ(checker->stats().total_violations(), 0u);
        } else {
          EXPECT_THROW(d.gc.set_state(kParamBase, to), ProtocolViolation)
              << to_string(from) << "->" << to_string(to)
              << (proto == Protocol::kUpdate ? " update" : " invalidation");
          EXPECT_EQ(checker->stats().illegal_transitions, 1u);
        }
        EXPECT_GE(checker->stats().transitions_checked, 1u);
      }
    }
  }
}

TEST(TransitionMatrix, MToSPushFiresUnderInvalidationOnly) {
  // The negative the issue demands: an M->S *push* (outside any demand
  // read) is the update-protocol extension and must be rejected under
  // stock MESI.
  Domain d(Protocol::kInvalidation);
  d.agent->device_write_line(0.0, kGradBase);  // Gs: E->M, legally.
  auto checker = d.attach();
  const ViolationKind k =
      kind_of([&] { d.gc.set_state(kGradBase, MesiState::kShared); });
  EXPECT_EQ(k, ViolationKind::kIllegalTransition);
  // Same push under the update protocol is the whole point of the paper.
  Domain u(Protocol::kUpdate);
  u.agent->device_write_line(0.0, kGradBase);
  auto uchecker = u.attach();
  EXPECT_NO_THROW(u.gc.set_state(kGradBase, MesiState::kShared));
}

TEST(TransitionMatrix, MToSInsideDemandReadIsAccepted) {
  // Stock MESI's snoop-read downgrade: the dirty line is written back as
  // the kData response of a demand fetch. The checker must not confuse
  // this with the update-protocol push.
  Domain d(Protocol::kInvalidation);
  auto checker = d.attach();
  d.cpu_mem.write_f32(kParamBase, 7.5f);
  d.agent->cpu_write_line(0.0, kParamBase);  // Cs=M, Gs=I.
  EXPECT_NO_THROW(d.agent->device_read_line(0.0, kParamBase));
  EXPECT_EQ(checker->stats().total_violations(), 0u);
}

// --- Invariant (a): SWMR + snoop consistency -------------------------------

TEST(TransitionMatrix, DeviceWriteAllocateFromInvalidIsLegal) {
  // Regression (found by the teco::mc model checker): a device write to a
  // line the giant cache does not hold must take the same two-step
  // I->E->M ownership path the CPU-side write allocator models; the raw
  // I->M poke it used to issue is exactly what the matrix above forbids.
  Domain d(Protocol::kInvalidation);
  d.gc.set_state(kParamBase, MesiState::kInvalid);  // Pre-attach setup.
  auto chk = d.attach();
  EXPECT_NO_THROW(d.agent->device_write_line(0.0, kParamBase));
  EXPECT_EQ(d.gc.state(kParamBase), MesiState::kModified);
}

TEST(DbaMerge, IneligibleRegionPushesFullLinesUnderTrim) {
  // Regression: with DBA trimming active, a push of a non-eligible
  // (gradient) line must bypass the aggregator and move all 64 bytes —
  // trimming it would splice dirty low bytes into whatever junk the
  // device holds. The strict checker's data-value invariant watches the
  // same rule, so this must also stay silent.
  Domain d(Protocol::kUpdate, dba::DbaRegister(true, 2));
  auto chk = d.attach();
  for (int i = 0; i < 16; ++i) {
    d.cpu_mem.write_f32(kGradBase + 4 * i, 1.25f + i);
  }
  EXPECT_NO_THROW({
    d.agent->cpu_write_line(0.0, kGradBase);
    d.agent->cxl_fence(0.0);
  });
  EXPECT_EQ(d.device_mem.read_line(kGradBase), d.cpu_mem.read_line(kGradBase));
}

TEST(DataValue, DeviceWriteRefreshesExpectedBytes) {
  // Regression: once the device takes ownership and writes a DBA-eligible
  // line, the checker must re-snapshot its expected device bytes — judging
  // later reads against the pre-write snapshot is a false positive.
  Domain d(Protocol::kUpdate, dba::DbaRegister(true, 2));
  auto chk = d.attach();
  for (int i = 0; i < 16; ++i) {
    d.cpu_mem.write_f32(kParamBase + 4 * i, 1.0f);
  }
  d.agent->cpu_write_line(0.0, kParamBase);
  d.agent->cxl_fence(0.0);  // Push lands; expected_dev snapshotted.
  for (int i = 0; i < 16; ++i) {
    d.device_mem.write_f32(kParamBase + 4 * i, 2.0f);
  }
  EXPECT_NO_THROW({
    d.agent->device_write_line(0.0, kParamBase);
    d.agent->cxl_fence(0.0);
    d.agent->device_read_line(0.0, kParamBase);
  });
}

TEST(Swmr, SecondOwnerInjectionIsDetected) {
  Domain d(Protocol::kInvalidation);
  auto checker = d.attach();
  d.agent->cpu_write_line(0.0, kParamBase);  // Cs=M, Gs=I.
  // Inject a second owner: I->E is a legal transition on its own, so only
  // the SWMR sweep can catch it.
  const ViolationKind k =
      kind_of([&] { d.gc.set_state(kParamBase, MesiState::kExclusive); });
  EXPECT_EQ(k, ViolationKind::kSwmr);
  EXPECT_EQ(checker->stats().swmr_violations, 1u);
}

TEST(Swmr, FlushAllRetiresSnoopEntries) {
  // Regression: cpu_flush_all must retire the CPU's snoop-filter entries
  // along with the dropped S-lines, or the checker sees a phantom sharer.
  Domain d(Protocol::kInvalidation);
  auto checker = d.attach();
  d.cpu_mem.write_f32(kParamBase, 1.0f);
  d.agent->cpu_write_line(0.0, kParamBase);       // Cs=M, snoop: {cpu}.
  d.agent->device_read_line(0.0, kParamBase);     // Cs=S, Gs=S.
  EXPECT_NO_THROW(d.agent->cpu_flush_all(1.0));   // Cs=I; entry must go.
  EXPECT_FALSE(
      d.agent->snoop_filter().is_sharer(kParamBase, coherence::Sharer::kCpu));
  EXPECT_NO_THROW(checker->verify_quiescent());
  EXPECT_EQ(checker->stats().total_violations(), 0u);
}

// --- Invariant (c): data values / DBA merge --------------------------------

TEST(DataValue, CorruptedDeviceBytesAreDetectedOnRead) {
  Domain d(Protocol::kUpdate, dba::DbaRegister(true, 2));
  auto checker = d.attach();
  d.cpu_mem.write_f32(kParamBase, 2.0f);
  d.agent->cpu_write_line(0.0, kParamBase);  // Push + DBA merge.
  // Corrupt a stale high byte behind the protocol's back.
  auto line = d.device_mem.read_line(kParamBase);
  line[3] ^= 0xFF;
  d.device_mem.write_line(kParamBase, line);
  const ViolationKind k =
      kind_of([&] { d.agent->device_read_line(1.0, kParamBase); });
  EXPECT_EQ(k, ViolationKind::kDataValue);
}

TEST(DbaMerge, CorruptedMergeOutputIsDetected) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  const dba::DbaRegister reg(true, 2);
  mem::BackingStore::Line old_line{};
  old_line.fill(0xAA);
  std::vector<std::uint8_t> payload(dba::payload_bytes(2), 0x55);
  // A faithful merge keeps high bytes from old_line and takes low bytes
  // from the payload; corrupt one high byte of the result.
  dba::Disaggregator dis(reg);
  auto merged = dis.merge(old_line, payload);
  merged[2] ^= 0x01;
  const ViolationKind k = kind_of([&] {
    checker->on_dba_merge(old_line.data(), payload.data(), payload.size(),
                          merged.data(), reg.encode());
  });
  EXPECT_EQ(k, ViolationKind::kDbaMerge);
  EXPECT_EQ(checker->stats().dba_merge_violations, 1u);
}

TEST(DbaMerge, WrongAggregatorBytesAreDetected) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  const dba::DbaRegister reg(true, 2);
  mem::BackingStore::Line src{};
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i);
  }
  // A payload that concatenated the wrong (high) bytes.
  std::vector<std::uint8_t> payload;
  for (std::size_t w = 0; w < mem::kWordsPerLine; ++w) {
    payload.push_back(src[w * 4 + 2]);
    payload.push_back(src[w * 4 + 3]);
  }
  const ViolationKind k = kind_of([&] {
    checker->on_dba_pack(src.data(), payload.data(), payload.size(),
                         reg.encode());
  });
  EXPECT_EQ(k, ViolationKind::kDbaMerge);
}

// --- Invariant (d): fence completeness + flit conservation -----------------

TEST(Fence, IncompleteDrainIsDetected) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  const auto delivery = d.agent->cpu_write_line(0.0, kParamBase);
  ASSERT_TRUE(delivery.has_value());
  ASSERT_GT(delivery->delivered, 0.0);
  // A fence claiming drain before that delivery left a flit in flight.
  const ViolationKind k = kind_of([&] { checker->on_fence(0, 0.0, 0.0); });
  EXPECT_EQ(k, ViolationKind::kFence);
}

TEST(Fence, PhantomFlitBreaksConservation) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  // One flit the observer saw but the channel never accounted.
  checker->on_packet(0.0, 0, 0, kParamBase, 1, 0.0);
  const ViolationKind k = kind_of([&] { d.agent->cxl_fence(0.0); });
  EXPECT_EQ(k, ViolationKind::kFlitConservation);
}

TEST(Fence, CleanTrafficPassesBothChecks) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  d.agent->cpu_write_line(0.0, kParamBase);
  d.agent->device_write_line(0.0, kGradBase);
  EXPECT_NO_THROW(d.agent->cxl_fence(0.0));
  EXPECT_EQ(checker->stats().total_violations(), 0u);
}

// --- Check levels ----------------------------------------------------------

TEST(CheckLevels, CountModeRecordsWithoutThrowing) {
  Domain d(Protocol::kInvalidation);
  d.agent->device_write_line(0.0, kGradBase);  // Gs=M.
  auto checker = d.attach(CheckLevel::kCount);
  EXPECT_NO_THROW(d.gc.set_state(kGradBase, MesiState::kShared));
  EXPECT_EQ(checker->stats().illegal_transitions, 1u);
  EXPECT_EQ(checker->stats().total_violations(), 1u);
  ASSERT_EQ(checker->violations().size(), 1u);
  EXPECT_NE(checker->violations()[0].find("illegal-transition"),
            std::string::npos);
  // Diagnostics carry the line's transition history.
  EXPECT_NE(checker->line_history(kGradBase).find("M->S"), std::string::npos);
}

TEST(CheckLevels, DetachStopsJudging) {
  Domain d(Protocol::kInvalidation);
  d.agent->device_write_line(0.0, kGradBase);
  {
    auto checker = d.attach();
    EXPECT_THROW(d.gc.set_state(kGradBase, MesiState::kShared),
                 ProtocolViolation);
  }
  // Checker destroyed: the same poke goes unjudged.
  EXPECT_NO_THROW(d.gc.set_state(kGradBase, MesiState::kModified));
}

TEST(CheckLevels, Names) {
  EXPECT_EQ(to_string(CheckLevel::kOff), "off");
  EXPECT_EQ(to_string(CheckLevel::kCount), "count");
  EXPECT_EQ(to_string(CheckLevel::kStrict), "strict");
  EXPECT_EQ(to_string(ViolationKind::kSwmr), "swmr");
  EXPECT_EQ(to_string(ViolationKind::kFlitConservation), "flit-conservation");
}

// --- Positive end-to-end flows ---------------------------------------------

TEST(EndToEnd, UpdateProtocolTrainingLoopIsViolationFree) {
  Domain d(Protocol::kUpdate);
  auto checker = d.attach();
  for (int step = 0; step < 4; ++step) {
    if (step == 2) d.agent->set_dba(0.0, dba::DbaRegister(true, 2));
    for (int l = 0; l < 8; ++l) {
      d.device_mem.write_f32(kGradBase + l * 64, 0.25f * step);
      d.agent->device_write_line(0.0, kGradBase + l * 64);
    }
    d.agent->cxl_fence(0.0);
    for (int l = 0; l < 8; ++l) {
      d.cpu_mem.write_f32(kParamBase + l * 64, 1.0f + step);
      d.agent->cpu_write_line(0.0, kParamBase + l * 64);
      d.agent->device_read_line(0.0, kParamBase + l * 64);
    }
    d.agent->cxl_fence(0.0);
    d.agent->cpu_flush_all(0.0);
  }
  checker->verify_quiescent();
  EXPECT_EQ(checker->stats().total_violations(), 0u);
  EXPECT_GT(checker->stats().transitions_checked, 0u);
  EXPECT_GT(checker->stats().ops_checked, 0u);
  EXPECT_GT(checker->stats().lines_tracked, 0u);
}

TEST(EndToEnd, InvalidationProtocolLoopIsViolationFree) {
  Domain d(Protocol::kInvalidation);
  auto checker = d.attach();
  for (int step = 0; step < 3; ++step) {
    d.device_mem.write_f32(kGradBase, -1.0f * step);
    d.agent->device_write_line(0.0, kGradBase);
    d.agent->cpu_read_line(0.0, kGradBase);   // Demand fetch, M->S in-op.
    d.cpu_mem.write_f32(kParamBase, 2.0f * step);
    d.agent->cpu_write_line(0.0, kParamBase);
    d.agent->device_read_line(0.0, kParamBase);
    d.agent->cxl_fence(0.0);
    d.agent->cpu_flush_all(0.0);
  }
  checker->verify_quiescent();
  EXPECT_EQ(checker->stats().total_violations(), 0u);
}

// --- Session / config integration ------------------------------------------

TEST(SessionCheck, StrictCheckerAttachedByDefault) {
  core::Session session;
  ASSERT_NE(session.checker(), nullptr);
  EXPECT_EQ(session.checker()->level(), CheckLevel::kStrict);
  const auto params = session.allocate_parameters("p", 64 * 8);
  const auto grads = session.allocate_gradients("g", 64 * 8);
  std::vector<float> values(16, 0.5f);
  session.device_write_gradients(grads, values);
  session.backward_complete();
  session.check_activation(0);
  session.cpu_write_parameters(params, values);
  session.optimizer_step_complete();
  EXPECT_EQ(session.device_read_parameters(params, 16),
            std::vector<float>(16, 0.5f));
  EXPECT_EQ(session.checker()->stats().total_violations(), 0u);
  EXPECT_GT(session.checker()->stats().ops_checked, 0u);
}

TEST(SessionCheck, DbaActiveSessionStaysViolationFree) {
  core::SessionConfig cfg;
  cfg.act_aft_steps = 0;  // DBA active from the first step.
  core::Session session(cfg);
  const auto params = session.allocate_parameters("p", 64 * 4);
  std::vector<float> values(16, 1.0f);
  session.cpu_write_parameters(params, values);  // Full-precision baseline.
  session.optimizer_step_complete();
  session.check_activation(0);
  for (auto& v : values) v = 1.5f;
  session.cpu_write_parameters(params, values);  // Trimmed push.
  session.optimizer_step_complete();
  session.device_read_parameters(params, 16);
  EXPECT_EQ(session.checker()->stats().total_violations(), 0u);
}

TEST(SessionCheck, OffLevelSkipsAttachment) {
  core::SessionConfig cfg;
  cfg.check = CheckLevel::kOff;
  core::Session session(cfg);
  EXPECT_EQ(session.checker(), nullptr);
}

TEST(ConfigCheck, ParseAndRoundTrip) {
  const auto parsed = core::parse_config("check = count\n");
  EXPECT_TRUE(parsed.errors.empty());
  EXPECT_EQ(parsed.session.check, CheckLevel::kCount);
  EXPECT_NE(core::to_config_text(parsed.session).find("check = count"),
            std::string::npos);
  const auto bad = core::parse_config("check = loud\n");
  EXPECT_FALSE(bad.errors.empty());
}

}  // namespace
}  // namespace teco::check
