// Event-driven channel facade tests: callbacks fire at the exact simulated
// instants the closed-form channel computes, in delivery order.
#include <gtest/gtest.h>

#include <vector>

#include "cxl/event_channel.hpp"
#include "sim/rng.hpp"

namespace teco::cxl {
namespace {

TEST(EventChannel, CallbackAtDeliveryInstant) {
  sim::EventQueue q;
  EventChannel ch(q, "ev", 1e9, sim::us(1));
  double fired_at = -1.0;
  const auto d = ch.submit(0.0, data_packet(MessageType::kData, 0, 1000),
                           [&](const Packet&, const Delivery& del) {
                             fired_at = q.now();
                             EXPECT_DOUBLE_EQ(del.delivered, q.now());
                           });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, d.delivered);
  EXPECT_DOUBLE_EQ(fired_at, 2e-6);  // 1 us wire + 1 us latency.
}

TEST(EventChannel, DeliveriesFireInOrder) {
  sim::EventQueue q;
  EventChannel ch(q, "ev", 1e9, 0.0);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    ch.submit(0.0, data_packet(MessageType::kData, 0, 100),
              [&, i](const Packet&, const Delivery&) { order.push_back(i); });
  }
  q.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventChannel, TimingMatchesPlainChannel) {
  sim::EventQueue q;
  EventChannel ev(q, "ev", 12.8e9, sim::ns(400), 16);
  Channel plain("plain", 12.8e9, sim::ns(400), 16);
  sim::Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform(0.0, 1e-7);
    const auto pkt =
        data_packet(MessageType::kData, 0, 16 + rng.next_below(128));
    const auto a = ev.submit(t, pkt);
    const auto b = plain.submit(t, pkt);
    ASSERT_DOUBLE_EQ(a.delivered, b.delivered);
  }
}

TEST(EventChannel, DrainCallbackIsEventDrivenFence) {
  sim::EventQueue q;
  EventChannel ch(q, "ev", 1e9, 0.0);
  ch.submit(0.0, data_packet(MessageType::kData, 0, 2000));
  bool drained = false;
  ch.on_drained([&] {
    drained = true;
    EXPECT_DOUBLE_EQ(q.now(), 2e-6);
  });
  q.run_until(1e-6);
  EXPECT_FALSE(drained);  // Transfer still in flight.
  q.run();
  EXPECT_TRUE(drained);
}

TEST(EventChannel, ConsumerReactsToProducerEvents) {
  // The canonical use: a consumer stage (CPU clip) begins the moment the
  // last gradient chunk lands, not at a precomputed time.
  sim::EventQueue q;
  EventChannel ch(q, "ev", 10e9, sim::ns(100));
  constexpr int kChunks = 8;
  int landed = 0;
  double clip_started = -1.0;
  for (int i = 0; i < kChunks; ++i) {
    ch.submit(i * 1e-6, data_packet(MessageType::kFlushData, 0, 4096),
              [&](const Packet&, const Delivery&) {
                if (++landed == kChunks) clip_started = q.now();
              });
  }
  q.run();
  EXPECT_EQ(landed, kChunks);
  EXPECT_GT(clip_started, 7e-6);  // After the last chunk's ready time.
}

}  // namespace
}  // namespace teco::cxl
