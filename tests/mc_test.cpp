// teco::mc — exhaustive model checker, mutation hooks, HB race analyzer.
//
// The state/edge counts pinned here are goldens in the strongest sense:
// BFS over a fixed alphabet is deterministic, so any drift means the
// protocol's reachable state space changed — either an intentional
// protocol change (re-measure and update) or a nondeterminism bug.
#include <gtest/gtest.h>

#include <vector>

#include "core/session.hpp"
#include "mc/hb_analyzer.hpp"
#include "mc/fabric_driver.hpp"
#include "mc/model_checker.hpp"
#include "mc/mutation_hook.hpp"

namespace {

using namespace teco;

// Every sweep in this file must stay far inside the 60 s CI budget for
// the whole mc-exhaustive job; individually they run in well under 1 s.
constexpr double kWallBudgetSeconds = 60.0;

mc::McResult sweep(const mc::McConfig& cfg) {
  mc::McResult r = mc::ModelChecker(cfg).run();
  EXPECT_FALSE(r.truncated) << r.summary();
  EXPECT_LT(r.wall_seconds, kWallBudgetSeconds);
  return r;
}

// --- Exhaustive healthy sweeps: golden state-space counts -------------------

TEST(ModelChecker, UpdateTwoParamLinesExhaustive) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 2;
  cfg.driver.grad_lines = 0;
  const mc::McResult r = sweep(cfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.states, 2464u);
  EXPECT_EQ(r.edges, 37160u);
  EXPECT_EQ(r.deduped, 34697u);
  EXPECT_EQ(r.max_depth, 10u);
}

TEST(ModelChecker, UpdateParamPlusGradExhaustive) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 1;
  cfg.driver.grad_lines = 1;
  const mc::McResult r = sweep(cfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.states, 3616u);
  EXPECT_EQ(r.edges, 55644u);
}

TEST(ModelChecker, InvalidationTwoParamLinesExhaustive) {
  mc::McConfig cfg;
  cfg.driver.protocol = coherence::Protocol::kInvalidation;
  cfg.driver.param_lines = 2;
  const mc::McResult r = sweep(cfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  // Invalidation MESI has no FlushData pushes, trims or scrub obligations:
  // its reachable space is a fraction of the update protocol's.
  EXPECT_EQ(r.states, 450u);
  EXPECT_EQ(r.edges, 6750u);
  EXPECT_EQ(r.max_depth, 7u);
}

TEST(ModelChecker, FtModeExhaustive) {
  mc::McConfig cfg;
  cfg.driver.ft = true;
  cfg.driver.param_lines = 2;
  const mc::McResult r = sweep(cfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.states, 5630u);
  EXPECT_EQ(r.edges, 85692u);
}

TEST(ModelChecker, FtModeParamPlusGradExhaustive) {
  mc::McConfig cfg;
  cfg.driver.ft = true;
  cfg.driver.param_lines = 1;
  cfg.driver.grad_lines = 1;
  const mc::McResult r = sweep(cfg);
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_EQ(r.states, 12418u);
  EXPECT_EQ(r.edges, 179256u);
}

TEST(ModelChecker, SymmetryReductionShrinksTheSpace) {
  mc::McConfig cfg;
  cfg.driver.protocol = coherence::Protocol::kInvalidation;
  cfg.driver.param_lines = 2;
  const mc::McResult reduced = sweep(cfg);
  cfg.symmetry = false;
  const mc::McResult full = sweep(cfg);
  EXPECT_TRUE(full.ok()) << full.summary();
  // The quotient must be sound (no new failures either way) and strict
  // (two interchangeable lines x two interchangeable values collapse).
  EXPECT_GT(full.states, reduced.states);
  EXPECT_GT(full.edges, reduced.edges);
}

TEST(ModelChecker, RepeatedRunsAreDeterministic) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 2;
  const mc::McResult a = sweep(cfg);
  const mc::McResult b = sweep(cfg);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.deduped, b.deduped);
  EXPECT_EQ(a.max_depth, b.max_depth);
}

// --- Seeded defects: exhaustive detection with minimal counterexamples -----

TEST(ModelCheckerMutation, IllegalTransitionCaught) {
  mc::McConfig cfg;
  cfg.driver.protocol = coherence::Protocol::kInvalidation;
  cfg.driver.param_lines = 2;
  mc::IllegalTransitionMutation hook;
  cfg.mutation = &hook;
  const mc::McResult r = sweep(cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.found(check::ViolationKind::kIllegalTransition))
      << r.summary();
  ASSERT_FALSE(r.violations.empty());
  // BFS yields a minimal trace: one write to leave the reset state, then
  // the poke. Print it — the issue's acceptance gate asks for the trace.
  const mc::Counterexample& c = r.violations.front();
  EXPECT_EQ(c.path.size(), 2u);
  EXPECT_EQ(c.path.back().kind, mc::Action::Kind::kMutate);
  std::puts(mc::format_counterexample(c, cfg).c_str());
}

TEST(ModelCheckerMutation, DroppedFlushDataCaught) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 2;
  mc::DroppedFlushDataMutation hook;
  cfg.mutation = &hook;
  const mc::McResult r = sweep(cfg);
  ASSERT_FALSE(r.ok());
  // The silent payload loss surfaces twice: the byte oracle diverges at
  // the mutated state itself (depth 2), and the runtime checker's
  // data-value invariant fires on the consumer's next read (depth 3).
  EXPECT_TRUE(r.found(check::ViolationKind::kDataValue)) << r.summary();
  ASSERT_FALSE(r.divergences.empty());
  EXPECT_EQ(r.divergences.front().path.size(), 2u);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_EQ(r.violations.front().path.size(), 3u);
  std::puts(mc::format_counterexample(r.divergences.front(), cfg).c_str());
  std::puts(mc::format_counterexample(r.violations.front(), cfg).c_str());
}

TEST(ModelCheckerMutation, StaleSnoopSharerCaught) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 2;
  mc::StaleSnoopSharerMutation hook;
  cfg.mutation = &hook;
  const mc::McResult r = sweep(cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.found(check::ViolationKind::kSnoopFilter)) << r.summary();
  ASSERT_FALSE(r.violations.empty());
  // The update protocol must keep the filter empty, so the very first
  // action can already plant the stale sharer: a depth-1 counterexample.
  const mc::Counterexample& c = r.violations.front();
  EXPECT_EQ(c.path.size(), 1u);
  EXPECT_EQ(c.path.front().kind, mc::Action::Kind::kMutate);
  std::puts(mc::format_counterexample(c, cfg).c_str());
}

// --- Liveness negatives ----------------------------------------------------

TEST(ModelCheckerLiveness, DivergentFlushIsALivelock) {
  mc::McConfig cfg;
  cfg.driver.param_lines = 2;
  mc::DivergentFlushMutation hook;
  cfg.mutation = &hook;
  const mc::McResult r = sweep(cfg);
  EXPECT_GT(r.livelocks_total, 0u) << r.summary();
  ASSERT_FALSE(r.livelocks.empty());
  // Arming the perturbation is enough: the quiesce probe at the mutated
  // state itself never fixpoints.
  EXPECT_EQ(r.livelocks.front().path.size(), 1u);
  std::puts(mc::format_counterexample(r.livelocks.front(), cfg).c_str());
}

TEST(ModelCheckerLiveness, UnscrubbableFaultsDeadlockAndStick) {
  mc::McConfig cfg;
  cfg.driver.ft = true;
  cfg.driver.allow_scrub = false;
  cfg.driver.param_lines = 2;
  const mc::McResult r = sweep(cfg);
  // Without the scrub action a crash leaves no data-progress action
  // enabled (deadlock) and a poisoned line can never become serviceable
  // again (stuck: AG EF good fails).
  EXPECT_EQ(r.deadlocks_total, 136u) << r.summary();
  EXPECT_EQ(r.stuck_total, 824u) << r.summary();
  EXPECT_EQ(r.violations_total, 0u) << r.summary();
  ASSERT_FALSE(r.deadlocks.empty());
  EXPECT_EQ(r.deadlocks.front().path.size(), 1u);
  EXPECT_EQ(r.deadlocks.front().path.front().kind,
            mc::Action::Kind::kCrash);
  ASSERT_FALSE(r.stuck.empty());
  EXPECT_EQ(r.stuck.front().path.size(), 1u);
  EXPECT_EQ(r.stuck.front().path.front().kind, mc::Action::Kind::kPoison);
}

TEST(ModelCheckerLiveness, ScrubRestoresLiveness) {
  mc::McConfig cfg;
  cfg.driver.ft = true;
  cfg.driver.allow_scrub = true;
  cfg.driver.param_lines = 2;
  const mc::McResult r = sweep(cfg);
  EXPECT_EQ(r.deadlocks_total, 0u) << r.summary();
  EXPECT_EQ(r.stuck_total, 0u) << r.summary();
}

// --- Happens-before analyzer over core::Session traces ---------------------

core::SessionConfig hb_session_config() {
  core::SessionConfig cfg;
  cfg.check_hb = true;
  cfg.act_aft_steps = 1;
  return cfg;
}

TEST(HbAnalyzer, CleanTrainingLoopHasNoRaces) {
  core::Session s(hb_session_config());
  const std::vector<float> vals(64, 1.0f);  // Four cache lines.
  const auto params = s.allocate_parameters("params", 64 * 4);
  const auto grads = s.allocate_gradients("grads", 64 * 4);
  s.seed_cpu_memory(params, vals);
  s.seed_device_memory(grads, vals);
  for (std::size_t step = 0; step < 3; ++step) {
    (void)s.device_read_parameters(params, 64);
    s.device_write_gradients(grads, vals);
    s.backward_complete();
    s.check_activation(step);
    (void)s.cpu_read_gradients(grads, 64);
    s.cpu_write_parameters(params, vals);
    s.optimizer_step_complete();
  }
  const mc::HbReport rep = s.analyze_hb();
  EXPECT_TRUE(rep.clean()) << rep.to_string();
  EXPECT_EQ(rep.accesses, 48u);
  EXPECT_EQ(rep.fences, 12u);
}

TEST(HbAnalyzer, PreFenceDeviceReadIsARace) {
  core::Session s(hb_session_config());
  const std::vector<float> vals(64, 1.0f);
  const auto params = s.allocate_parameters("params", 64 * 4);
  s.seed_cpu_memory(params, vals);
  s.cpu_write_parameters(params, vals);
  // The CPU's FlushData pushes are still in flight; reading before the
  // optimizer fence means nothing orders the device's loads after them.
  (void)s.device_read_parameters(params, 64);
  s.optimizer_step_complete();
  const mc::HbReport rep = s.analyze_hb();
  EXPECT_EQ(rep.races_total, 4u) << rep.to_string();
  ASSERT_FALSE(rep.races.empty());
  const mc::HbRace& race = rep.races.front();
  EXPECT_EQ(race.current.agent, mc::HbAgent::kDevice);
  EXPECT_FALSE(race.current.is_write);
  EXPECT_EQ(race.prior.agent, mc::HbAgent::kCpu);
  EXPECT_TRUE(race.prior.is_write);
  // Drain the teardown stderr lint into the test log (it must not throw).
  std::puts(rep.to_string().c_str());
}

TEST(HbAnalyzer, AnalyzeWithoutRecorderThrows) {
  core::SessionConfig cfg;  // check = strict, no recorder.
  core::Session s(cfg);
  EXPECT_THROW((void)s.analyze_hb(), std::logic_error);
}

// --- Pooled-fabric slice (src/mc/fabric_driver.hpp) ------------------------

TEST(FabricMc, TwoNodePoolSliceSweepsExhaustively) {
  const auto r = mc::fabric_model_check(mc::FabricMcConfig{});
  EXPECT_FALSE(r.truncated) << r.summary();
  EXPECT_TRUE(r.ok()) << r.summary();
  // Golden state space of the 2-node × 1-pool-line collective: push/fold/
  // commit/broadcast over a fixed alphabet, BFS-deterministic.
  EXPECT_EQ(r.states, 13u) << r.summary();
  EXPECT_EQ(r.edges, 30u) << r.summary();
  EXPECT_EQ(r.deduped, 18u) << r.summary();
  EXPECT_EQ(r.max_depth, 7u) << r.summary();
}

TEST(FabricMc, DroppedCrossPortFlitIsCaughtMinimally) {
  mc::FabricMcConfig cfg;
  cfg.mutation = mc::FabricMutation::kDroppedFlit;
  const auto r = mc::fabric_model_check(cfg);
  EXPECT_FALSE(r.truncated) << r.summary();
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.failures.empty());
  // BFS order makes the first counterexample minimal: the flit vanishes
  // right after the first push, two actions deep.
  const auto& cx = r.failures.front();
  ASSERT_EQ(cx.path.size(), 2u) << mc::format_counterexample(cx);
  EXPECT_EQ(cx.path[0].kind, mc::FabricAction::Kind::kPush);
  EXPECT_EQ(cx.path[1].kind, mc::FabricAction::Kind::kMutate);
  EXPECT_NE(cx.what.find("oracle expects"), std::string::npos)
      << mc::format_counterexample(cx);
  // The mutated edge never extends the frontier: the healthy state space
  // stays the golden 13.
  EXPECT_EQ(r.states, 13u) << r.summary();
}

TEST(FabricMc, DoubleAppliedMergeIsCaughtMinimally) {
  mc::FabricMcConfig cfg;
  cfg.mutation = mc::FabricMutation::kDoubleFold;
  const auto r = mc::fabric_model_check(cfg);
  EXPECT_FALSE(r.truncated) << r.summary();
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.failures.empty());
  // Minimal path: push, fold, then the double-applied merge — three deep.
  const auto& cx = r.failures.front();
  ASSERT_EQ(cx.path.size(), 3u) << mc::format_counterexample(cx);
  EXPECT_EQ(cx.path[0].kind, mc::FabricAction::Kind::kPush);
  EXPECT_EQ(cx.path[1].kind, mc::FabricAction::Kind::kFold);
  EXPECT_EQ(cx.path[2].kind, mc::FabricAction::Kind::kMutate);
  EXPECT_NE(cx.what.find("merge applied 2 times"), std::string::npos)
      << mc::format_counterexample(cx);
  EXPECT_EQ(r.states, 13u) << r.summary();
}

}  // namespace
