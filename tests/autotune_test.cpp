// Autotuner + protocol-fallback tests.
#include <gtest/gtest.h>

#include "core/autotune.hpp"
#include "coherence/home_agent.hpp"
#include "coherence/giant_cache.hpp"
#include "cxl/link.hpp"
#include "dl/model_zoo.hpp"
#include "mem/cache.hpp"

namespace teco {
namespace {

TEST(Autotune, FindsReasonableActivationStep) {
  const auto task = dl::make_regression_task(51);
  core::AutotuneConfig cfg;
  cfg.train.model = dl::default_model_for(task, 3);
  cfg.train.steps = 500;
  cfg.train.batch_size = 16;
  cfg.perf_model = dl::gpt2();
  cfg.metric_tolerance = 0.05;
  cfg.bo.init_samples = 3;
  cfg.bo.iterations = 4;

  const auto res = core::tune_act_aft_steps(task, cfg);
  EXPECT_GT(res.evaluations, 2u);
  EXPECT_LE(res.best_act_aft_steps, cfg.train.steps);
  EXPECT_GT(res.speedup_at_best, 1.0);
  // The tuner must not pick a point that blows the quality budget when
  // cheaper-quality points with near-equal speed exist.
  EXPECT_LT(res.metric_delta_at_best, 0.30);
}

TEST(Autotune, PenaltyWeightSteersAwayFromEarlyActivation) {
  const auto task = dl::make_regression_task(52);
  core::AutotuneConfig cfg;
  cfg.train.model = dl::default_model_for(task, 4);
  cfg.train.steps = 400;
  cfg.train.batch_size = 16;
  cfg.perf_model = dl::gpt2();
  cfg.metric_tolerance = 0.0;
  cfg.penalty_weight = 1e6;  // Any quality loss dominates.
  cfg.bo.init_samples = 3;
  cfg.bo.iterations = 3;
  const auto res = core::tune_act_aft_steps(task, cfg);
  // With an extreme penalty the winner is a late activation (small delta).
  EXPECT_GT(res.best_act_aft_steps, 0u);
}

// --- Section IV-A2 fallback: no clear producer/consumer ---

struct FallbackHarness {
  FallbackHarness()
      : gc(1 << 20), cpu(mem::llc_config()) {
    gc.map_region("shared", 0x1000, 64 * 64,
                  coherence::MesiState::kExclusive, false);
    coherence::HomeAgent::Options opts;
    opts.protocol = coherence::Protocol::kUpdate;
    agent = std::make_unique<coherence::HomeAgent>(link, gc, cpu, opts);
  }
  cxl::Link link;
  coherence::GiantCache gc;
  mem::Cache cpu;
  std::unique_ptr<coherence::HomeAgent> agent;
};

TEST(ProtocolFallback, ConcurrentUpdateDemotesRegion) {
  FallbackHarness h;
  // Device takes the line dirty under... update mode pushes immediately,
  // so force the conflicting state via an explicit demotion scenario:
  // demote manually, device writes leave Gs = M, then a CPU write to the
  // same line under the ORIGINAL update protocol would be a conflict.
  // Simulate the conflict directly: set the device line Modified.
  h.gc.set_state(0x1000, coherence::MesiState::kModified);
  EXPECT_EQ(h.agent->effective_protocol(0x1000),
            coherence::Protocol::kUpdate);
  h.agent->cpu_write_line(0.0, 0x1000);
  EXPECT_EQ(h.agent->stats().protocol_fallbacks, 1u);
  EXPECT_EQ(h.agent->effective_protocol(0x1000),
            coherence::Protocol::kInvalidation);
  // Subsequent writes in the region behave as invalidation MESI.
  const auto d = h.agent->cpu_write_line(1.0, 0x1000 + 64);
  EXPECT_FALSE(d.has_value());  // No push.
  EXPECT_GT(h.agent->snoop_filter().entries(), 0u);
}

TEST(ProtocolFallback, SymmetricDeviceSideConflict) {
  FallbackHarness h;
  // CPU holds the line Modified (as under invalidation), device writes it.
  h.gc.set_state(0x1000, coherence::MesiState::kInvalid);
  // Insert a dirty M line into the CPU cache via a demoted-region write:
  h.agent->demote_region(0.0, 0x1000);
  h.agent->cpu_write_line(0.0, 0x1000);
  ASSERT_EQ(h.agent->stats().protocol_fallbacks, 1u);
  // Reset the demotion flag scenario: a fresh harness where the conflict
  // arises from the device side.
  FallbackHarness h2;
  // CPU writes under update leave Cs = S (clean); set Cs = M by hand.
  h2.agent->cpu_write_line(0.0, 0x1000);
  auto* meta = h2.cpu.lookup(0x1000);
  ASSERT_NE(meta, nullptr);
  meta->state = static_cast<std::uint8_t>(coherence::MesiState::kModified);
  meta->dirty = true;
  h2.agent->device_write_line(1.0, 0x1000);
  EXPECT_EQ(h2.agent->stats().protocol_fallbacks, 1u);
  EXPECT_EQ(h2.agent->effective_protocol(0x1000),
            coherence::Protocol::kInvalidation);
}

TEST(ProtocolFallback, ExplicitDemotionIsIdempotent) {
  FallbackHarness h;
  h.agent->demote_region(0.0, 0x1000);
  h.agent->demote_region(0.0, 0x1040);  // Same region.
  EXPECT_EQ(h.agent->stats().protocol_fallbacks, 1u);
  h.agent->demote_region(0.0, 0xDEAD000);  // Unmapped: no-op.
  EXPECT_EQ(h.agent->stats().protocol_fallbacks, 1u);
}

TEST(ProtocolFallback, OtherRegionsStayOnUpdateProtocol) {
  FallbackHarness h;
  h.gc.map_region("other", 0x100000, 64 * 16,
                  coherence::MesiState::kExclusive, false);
  h.agent->demote_region(0.0, 0x1000);
  EXPECT_EQ(h.agent->effective_protocol(0x100000),
            coherence::Protocol::kUpdate);
  const auto d = h.agent->cpu_write_line(0.0, 0x100000);
  EXPECT_TRUE(d.has_value());  // Still pushes.
}

}  // namespace
}  // namespace teco
