// teco::obs — registry, spans, snapshots, exports, bench reports.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/gantt.hpp"
#include "core/report.hpp"
#include "core/trace_export.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"

namespace {

using namespace teco;

// TECO_OBS=OFF compiles Counter::add / Gauge::set / Hist::observe to
// no-ops, so every test that records a value and reads it back must skip;
// registration, lookup and structural behavior stay covered by the rest.
#ifdef TECO_OBS_DISABLED
#define TECO_SKIP_WITHOUT_OBS() \
  GTEST_SKIP() << "telemetry recording compiled out (TECO_OBS=OFF)"
#else
#define TECO_SKIP_WITHOUT_OBS() (void)0
#endif


TEST(MetricsRegistry, RegistrationIsIdempotent) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("cxl.up.flits");
  obs::Counter& b = reg.counter("cxl.up.flits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(reg.value("cxl.up.flits"), 3.0);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", 0.0, 1.0, 4), std::logic_error);
  EXPECT_EQ(reg.find_gauge("x"), nullptr);
  EXPECT_NE(reg.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, LookupWithoutRegistration) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, ResetKeepsHandles) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("tier.evictions");
  obs::Gauge& g = reg.gauge("tier.occupancy");
  c.add(7.0);
  g.set(42.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  // The old handles still record into the registry after reset.
  c.add(1.0);
  EXPECT_DOUBLE_EQ(reg.value("tier.evictions"), 1.0);
}

TEST(MetricsRegistry, SamplesSortedAndHistogramExpanded) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  reg.counter("b.count").add(2.0);
  obs::Hist& h = reg.histogram("a.lat", 0.0, 10.0, 10);
  h.observe(1.0);
  h.observe(9.0);
  const auto samples = reg.samples();
  ASSERT_GE(samples.size(), 3u);
  // Sorted by name: the a.lat.* expansion precedes b.count.
  EXPECT_EQ(samples.front().name, "a.lat.count");
  bool saw_p95 = false;
  for (const auto& s : samples) {
    if (s.name == "a.lat.p95") saw_p95 = true;
    if (s.name == "a.lat.count") {
      EXPECT_TRUE(s.monotone);
      EXPECT_DOUBLE_EQ(s.value, 2.0);
    }
    if (s.name == "a.lat.mean") {
      EXPECT_FALSE(s.monotone);
    }
  }
  EXPECT_TRUE(saw_p95);
}

TEST(Span, RaiiClosesOnClockAndClampsNegative) {
  obs::TraceBuffer buf;
  sim::Time clock = 1.0;
  {
    obs::Span s(&buf, "step", "step 0", clock, &clock);
    clock = 3.0;
  }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_DOUBLE_EQ(buf.events()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(buf.events()[0].end, 3.0);
  // end < begin is clamped to an instant, never a negative interval.
  buf.emit("x", "backwards", 5.0, 2.0);
  EXPECT_DOUBLE_EQ(buf.events()[1].end, 5.0);
  // Null buffer: every operation is a no-op.
  obs::Span none(nullptr, "x", "y", 0.0);
  none.close(1.0);
}

TEST(StepPublisher, DeltasAreMonotoneDifferences) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("cxl.up.bytes");
  obs::Gauge& g = reg.gauge("queue.depth");
  c.add(100.0);
  g.set(4.0);

  obs::StepPublisher pub;
  const auto s0 = pub.publish(reg, 0, 0.0, 1.0);
  ASSERT_EQ(s0.deltas.size(), 1u);  // Gauges are not monotone.
  EXPECT_EQ(s0.deltas[0].name, "cxl.up.bytes");
  EXPECT_DOUBLE_EQ(s0.deltas[0].value, 100.0);

  c.add(50.0);
  const auto s1 = pub.publish(reg, 1, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(s1.deltas[0].value, 50.0);
  EXPECT_DOUBLE_EQ(s1.totals[0].value, 150.0);

  pub.rebase();
  const auto s2 = pub.publish(reg, 2, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(s2.deltas[0].value, 150.0);  // Baseline forgotten.
}

TEST(StepPublisher, SinksReceiveEverySnapshot) {
  struct CountingSink final : obs::StepSink {
    int calls = 0;
    std::size_t last_step = 0;
    void on_step(const obs::StepSnapshot& snap) override {
      ++calls;
      last_step = snap.step;
    }
  };
  CountingSink sink;
  obs::MetricsRegistry reg;
  reg.counter("x").add();
  obs::StepPublisher pub;
  EXPECT_FALSE(pub.has_sinks());
  pub.add_sink(&sink);
  EXPECT_TRUE(pub.has_sinks());
  pub.publish(reg, 7, 0.0, 1.0);
  EXPECT_EQ(sink.calls, 1);
  EXPECT_EQ(sink.last_step, 7u);
  pub.remove_sink(&sink);
  pub.publish(reg, 8, 1.0, 2.0);
  EXPECT_EQ(sink.calls, 1);
}

TEST(JsonlWriter, GoldenLine) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  reg.counter("cxl.up.bytes").add(4096.0);
  reg.counter("idle.counter");  // Zero: elided from deltas, kept in totals.
  obs::StepPublisher pub;
  std::ostringstream os;
  obs::JsonlWriter writer(os);
  pub.add_sink(&writer);
  pub.publish(reg, 3, 0.0, 2e-6);
  EXPECT_EQ(os.str(),
            "{\"step\":3,\"t_begin_us\":0,\"t_end_us\":2,"
            "\"deltas\":{\"cxl.up.bytes\":4096},"
            "\"totals\":{\"cxl.up.bytes\":4096,\"idle.counter\":0}}\n");
}

TEST(PrometheusText, GoldenOutput) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  reg.counter("cxl.up.bytes").add(64.0);
  reg.gauge("tier.hbm_occupancy").set(0.5);
  const std::string text = obs::to_prometheus_text(reg);
  EXPECT_EQ(text,
            "# TYPE teco_cxl_up_bytes counter\n"
            "teco_cxl_up_bytes 64\n"
            "# TYPE teco_tier_hbm_occupancy gauge\n"
            "teco_tier_hbm_occupancy 0.5\n");
}

TEST(SnapshotRows, SkipsAllZeroRows) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  reg.counter("a").add(2.0);
  reg.counter("zero");
  obs::StepPublisher pub;
  const auto snap = pub.publish(reg, 0, 0.0, 1.0);
  const auto rows = obs::snapshot_rows(snap);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[0][1], "2");
  EXPECT_EQ(rows[0][2], "2");
  // And the TextTable wrapper renders a header plus that row.
  const std::string table = core::step_snapshot_table(snap);
  EXPECT_NE(table.find("metric"), std::string::npos);
  EXPECT_NE(table.find("| a"), std::string::npos);
}

TEST(ChromeTraceComposer, UnifiedTraceContainsAllThreeSources) {
  core::GanttChart g;
  g.add("GPU", '=', 0.0, 1e-6);
  obs::TraceBuffer spans;
  spans.emit("step", "step 0", 0.0, 2e-6);
  std::vector<core::CounterSeries> counters = {
      {"HBM bytes", {{0.0, 100}, {1e-6, 200}}}};

  core::ChromeTraceComposer c;
  c.add_gantt(g, "gantt", 1);
  c.add_counters(counters, 1);
  c.add_spans(spans, "telemetry", 2);
  const std::string json = c.json();

  EXPECT_NE(json.find(R"("name":"process_name")"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"gantt"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"telemetry"})"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"step 0")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"bytes":200})"), std::string::npos);
  // The legacy single-chart wrapper still produces the same gantt events.
  const std::string legacy = core::to_chrome_trace_json(g, "gantt", counters);
  EXPECT_NE(legacy.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(legacy.find(R"("ph":"C")"), std::string::npos);
}

TEST(ChromeTraceComposer, LaneTidsAreStablePerProcess) {
  core::GanttChart g;
  g.add("laneA", 'a', 0.0, 1.0);
  g.add("laneB", 'b', 0.0, 1.0);
  g.add("laneA", 'c', 1.0, 2.0);
  core::ChromeTraceComposer c;
  c.add_gantt(g, "p", 1);
  // 1 process_name + 2 lanes x 2 metadata + 3 X events.
  EXPECT_EQ(c.events(), 8u);
}

TEST(BenchReport, JsonSchemaAndOverride) {
  TECO_SKIP_WITHOUT_OBS();
  obs::MetricsRegistry reg;
  reg.counter("cxl.up.flits").add(12.0);
  obs::BenchReport r("unit_test");
  r.set_config("model", "gpt2");
  r.set_config("batch", 8.0);
  r.set_config("batch", 16.0);  // Upsert, not duplicate.
  r.set_headline("speedup_x", 1.5);
  r.attach_registry(&reg);
  const std::string json = r.json();
  EXPECT_NE(json.find("\"schema\": \"teco-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"batch\": 16"), std::string::npos);
  EXPECT_EQ(json.find("\"batch\": 8,"), std::string::npos);
  EXPECT_NE(json.find("\"speedup_x\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"cxl.up.flits\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"wall_clock_s\":"), std::string::npos);
}

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_number(2.0), "2");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  // Nonfinite values must not produce invalid JSON.
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

}  // namespace
