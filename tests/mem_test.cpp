// Unit tests for the memory substrate: addresses, caches, DRAM, stores.
#include <gtest/gtest.h>

#include <vector>

#include "mem/address.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace teco::mem {
namespace {

TEST(Address, LineHelpers) {
  EXPECT_EQ(line_base(0), 0u);
  EXPECT_EQ(line_base(63), 0u);
  EXPECT_EQ(line_base(64), 64u);
  EXPECT_EQ(line_index(128), 2u);
  EXPECT_TRUE(line_aligned(192));
  EXPECT_FALSE(line_aligned(193));
}

TEST(Address, RegionContainsAndOverlaps) {
  const Region r{1024, 256};
  EXPECT_TRUE(r.contains(1024));
  EXPECT_TRUE(r.contains(1279));
  EXPECT_FALSE(r.contains(1280));
  EXPECT_TRUE(r.contains_line(1216));
  EXPECT_FALSE(r.contains_line(1280));
  EXPECT_EQ(r.lines(), 4u);
  EXPECT_TRUE(r.overlaps(Region{1200, 64}));
  EXPECT_FALSE(r.overlaps(Region{1280, 64}));
  EXPECT_FALSE(r.overlaps(Region{0, 1024}));
}

TEST(Cache, PresetsMatchTableII) {
  EXPECT_EQ(l1_config().size_bytes, 8u * 1024);
  EXPECT_EQ(l1_config().ways, 8u);
  EXPECT_EQ(l2_config().size_bytes, 64u * 1024);
  EXPECT_EQ(l2_config().ways, 16u);
  EXPECT_EQ(llc_config().size_bytes, 16u * 1024 * 1024);
  EXPECT_EQ(llc_config().ways, 64u);
  EXPECT_EQ(llc_config().sets(),
            16u * 1024 * 1024 / (64 * 64));
}

TEST(Cache, RejectsBadConfig) {
  EXPECT_THROW(Cache(CacheConfig{0, 8, 64}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{1000, 8, 64}), std::invalid_argument);
}

TEST(Cache, HitMissAndLru) {
  Cache c(CacheConfig{4 * 64, 2, 64});  // 2 sets x 2 ways.
  EXPECT_EQ(c.lookup(0), nullptr);      // Miss.
  c.insert(0, 1, false);
  EXPECT_NE(c.lookup(0), nullptr);  // Hit.
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);

  // Same set: lines 0 and 2*64 map to set 0 with 2 sets.
  c.insert(2 * 64, 1, false);
  c.lookup(0);  // Touch 0 so line 128 becomes LRU.
  c.insert(4 * 64, 1, false);  // Evicts 128.
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(2 * 64));
  EXPECT_TRUE(c.contains(4 * 64));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, WritebackOnDirtyEviction) {
  Cache c(CacheConfig{2 * 64, 1, 64});  // Direct-mapped, 2 sets.
  std::vector<Addr> wb;
  c.set_writeback_fn([&](Addr a, std::uint8_t) { wb.push_back(a); });
  c.insert(0, 3, /*dirty=*/true);
  c.insert(2 * 64, 3, false);  // Same set, evicts dirty line 0.
  ASSERT_EQ(wb.size(), 1u);
  EXPECT_EQ(wb[0], 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack) {
  Cache c(CacheConfig{2 * 64, 1, 64});
  int wb = 0;
  c.set_writeback_fn([&](Addr, std::uint8_t) { ++wb; });
  c.insert(0, 1, false);
  c.insert(2 * 64, 1, false);
  EXPECT_EQ(wb, 0);
}

TEST(Cache, FlushDirtyKeepsLinesResident) {
  Cache c(llc_config());
  int wb = 0;
  c.set_writeback_fn([&](Addr, std::uint8_t) { ++wb; });
  c.insert(0, 1, true);
  c.insert(64, 1, true);
  c.insert(128, 1, false);
  EXPECT_EQ(c.flush_dirty(), 2u);
  EXPECT_EQ(wb, 2);
  EXPECT_EQ(c.resident_lines(), 3u);
  EXPECT_EQ(c.flush_dirty(), 0u);  // Now clean.
}

TEST(Cache, InvalidateOptionalWriteback) {
  Cache c(llc_config());
  int wb = 0;
  c.set_writeback_fn([&](Addr, std::uint8_t) { ++wb; });
  c.insert(0, 1, true);
  EXPECT_TRUE(c.invalidate(0, /*writeback_on_invalidate=*/false));
  EXPECT_EQ(wb, 0);
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.invalidate(0));
  c.insert(64, 1, true);
  EXPECT_TRUE(c.invalidate(64, true));
  EXPECT_EQ(wb, 1);
}

TEST(Cache, InsertReusesInvalidatedSlotBeforeEvicting) {
  // Regression: invalidate() leaves a valid=false husk in the set. A full
  // set with a husk has free capacity — insert() must reuse it instead of
  // evicting a live line, and must not report a phantom on_cache_drop for
  // the husk (whose stale state byte would corrupt an attached checker's
  // mirror of CPU residency). Found by the teco::mc model checker.
  struct DropCounter final : check::Observer {
    int drops = 0;
    void on_cache_drop(Addr, std::uint8_t, bool) override { ++drops; }
  };
  Cache c(CacheConfig{2 * 64, 2, 64});  // One set, two ways.
  DropCounter obs;
  c.set_observer(&obs);
  c.insert(0, 1, false);
  c.insert(64, 1, false);
  EXPECT_TRUE(c.invalidate(0));  // Husk occupies a slot; one real drop.
  EXPECT_EQ(obs.drops, 1);
  c.insert(128, 1, false);  // Must land in the husk's slot.
  EXPECT_EQ(obs.drops, 1);  // No phantom drop for the husk.
  EXPECT_EQ(c.stats().evictions, 0u);
  EXPECT_TRUE(c.contains(64));  // The live line survived.
  EXPECT_TRUE(c.contains(128));
  EXPECT_EQ(c.resident_lines(), 2u);
}

TEST(Cache, InsertUpdatesExistingLine) {
  Cache c(llc_config());
  c.insert(0, 1, false);
  auto& meta = c.insert(0, 2, true);
  EXPECT_EQ(meta.state, 2);
  EXPECT_TRUE(meta.dirty);
  EXPECT_EQ(c.resident_lines(), 1u);
}

TEST(Dram, SequentialHitsRows) {
  Dram d;
  // 32 sequential lines land in the same row per bank stride pattern.
  for (Addr a = 0; a < 32 * 64; a += 64) d.access(a, true);
  EXPECT_GT(d.stats().row_hits, d.stats().row_misses);
}

TEST(Dram, ShuffledMissesRows) {
  const DramConfig cfg;
  Dram seq(cfg), shuf(cfg);
  std::vector<std::pair<Addr, bool>> strace, xtrace;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    strace.emplace_back(i * 64, true);
    // Large stride: every access opens a fresh row.
    xtrace.emplace_back((i * 7919) % 4096 * 64 * 1024, true);
  }
  const auto seq_cycles = seq.replay(strace);
  const auto shuf_cycles = shuf.replay(xtrace);
  EXPECT_LT(seq_cycles, shuf_cycles);
}

TEST(Dram, ReadModifyWriteAmplification) {
  // Section VIII-D: the Disaggregator adds a read per line update. The
  // paper measures 2.48x (sequential) and 1.9x (shuffled) DRAM-cycle
  // increases; the ordering (sequential amplifies MORE, because row hits
  // made the baseline cheap) must reproduce.
  const DramConfig cfg;
  auto run = [&](bool add_read, bool shuffled) {
    Dram d(cfg);
    for (std::uint64_t i = 0; i < 8192; ++i) {
      const Addr a = shuffled ? ((i * 7919) % 8192) * 64 * 997 : i * 64;
      if (add_read) d.access(a, false);
      d.access(a, true);
    }
    return d.stats().cycles;
  };
  const double seq_ratio =
      static_cast<double>(run(true, false)) / run(false, false);
  const double shuf_ratio =
      static_cast<double>(run(true, true)) / run(false, true);
  EXPECT_GT(seq_ratio, shuf_ratio);
  EXPECT_GT(seq_ratio, 1.5);
  EXPECT_LT(seq_ratio, 3.5);
  EXPECT_GT(shuf_ratio, 1.2);
  EXPECT_LT(shuf_ratio, 2.5);
}

TEST(Dram, ResetClearsState) {
  Dram d;
  d.access(0, true);
  d.reset();
  EXPECT_EQ(d.stats().cycles, 0u);
  EXPECT_EQ(d.stats().writes, 0u);
}

TEST(BackingStore, LineRoundTrip) {
  BackingStore s;
  BackingStore::Line line{};
  for (std::size_t i = 0; i < kLineBytes; ++i) {
    line[i] = static_cast<std::uint8_t>(i);
  }
  s.write_line(128, line);
  EXPECT_EQ(s.read_line(128), line);
  EXPECT_EQ(s.read_line(128 + 32), line);  // Same line.
  EXPECT_EQ(s.read_line(256), BackingStore::Line{});
}

TEST(BackingStore, ByteAccessStraddlesLines) {
  BackingStore s;
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i + 1);
  }
  s.write(60, data);  // Straddles two lines.
  std::vector<std::uint8_t> out(100);
  s.read(60, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(s.resident_lines(), 3u);
}

TEST(BackingStore, F32RoundTrip) {
  BackingStore s;
  s.write_f32(4, 3.14159f);
  EXPECT_FLOAT_EQ(s.read_f32(4), 3.14159f);
  EXPECT_FLOAT_EQ(s.read_f32(8), 0.0f);
  s.clear();
  EXPECT_FLOAT_EQ(s.read_f32(4), 0.0f);
}

}  // namespace
}  // namespace teco::mem
