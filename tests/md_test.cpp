// Molecular-dynamics tests: real physics + the offload timeline.
#include <gtest/gtest.h>

#include <cmath>

#include "dl/byte_stats.hpp"
#include "md/lj_system.hpp"
#include "md/offload_md.hpp"
#include "offload/calibration.hpp"

namespace teco::md {
namespace {

LjConfig small_config() {
  LjConfig cfg;
  cfg.fcc_cells = 4;  // 256 atoms.
  return cfg;
}

TEST(LjSystem, LatticeSetup) {
  LjSystem sys(small_config());
  EXPECT_EQ(sys.n(), 256u);
  const double expected_box = std::cbrt(256.0 / 0.8442);
  EXPECT_NEAR(sys.box_length(), expected_box, 1e-9);
  for (const auto& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box_length());
  }
}

TEST(LjSystem, InitialTemperatureExact) {
  LjSystem sys(small_config());
  EXPECT_NEAR(sys.instantaneous_temperature(), 1.44, 1e-9);
}

TEST(LjSystem, ZeroNetMomentum) {
  LjSystem sys(small_config());
  Vec3 net{};
  for (const auto& v : sys.velocities()) {
    net.x += v.x;
    net.y += v.y;
    net.z += v.z;
  }
  EXPECT_NEAR(net.x, 0.0, 1e-9);
  EXPECT_NEAR(net.y, 0.0, 1e-9);
  EXPECT_NEAR(net.z, 0.0, 1e-9);
}

TEST(LjSystem, NewtonsThirdLaw) {
  LjSystem sys(small_config());
  Vec3 net{};
  for (const auto& f : sys.forces()) {
    net.x += f.x;
    net.y += f.y;
    net.z += f.z;
  }
  EXPECT_NEAR(net.x, 0.0, 1e-7);
  EXPECT_NEAR(net.y, 0.0, 1e-7);
  EXPECT_NEAR(net.z, 0.0, 1e-7);
}

TEST(LjSystem, EnergyConservationNve) {
  LjSystem sys(small_config());
  const double e0 = sys.total_energy();
  sys.run(100);
  const double e1 = sys.total_energy();
  // Velocity Verlet at dt=0.005 holds total energy to a small drift.
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.01 + 1.0);
}

TEST(LjSystem, MeltHeatsPotentialEnergy) {
  // Melting from a perfect lattice: potential energy rises (less negative)
  // as order is destroyed while total energy stays put.
  LjSystem sys(small_config());
  const double pe0 = sys.potential_energy();
  sys.run(200);
  EXPECT_GT(sys.potential_energy(), pe0);
}

TEST(LjSystem, CellListMatchesBruteForce) {
  // fcc_cells=4 gives a box under 3 cutoffs, so forces fall back to the
  // O(N^2) reference path; fcc_cells=6 uses the linked-cell path. Both are
  // perfect FCC lattices at the same density and cutoff, so the per-atom
  // potential energy must agree closely — a direct cross-validation of the
  // cell-list pair enumeration.
  LjSystem brute(small_config());          // 256 atoms, O(N^2).
  LjConfig big = small_config();
  big.fcc_cells = 6;                       // 864 atoms, celled.
  LjSystem celled(big);
  const double pe_brute = brute.potential_energy() / brute.n();
  const double pe_celled = celled.potential_energy() / celled.n();
  EXPECT_NEAR(pe_celled, pe_brute, 0.02);
  // Truncated (rc = 2.5, no tail correction) FCC LJ lattice energy at
  // rho = 0.8442 is about -6.77 epsilon/atom.
  EXPECT_NEAR(pe_celled, -6.77, 0.15);
  const double e0 = celled.total_energy();
  celled.run(50);
  EXPECT_NEAR(celled.total_energy(), e0, std::abs(e0) * 0.01 + 1.0);
}

TEST(LjSystem, PositionsStayInBox) {
  LjSystem sys(small_config());
  sys.run(50);
  for (const auto& p : sys.positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box_length());
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, sys.box_length());
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, sys.box_length());
  }
}

TEST(LjSystem, RadialDistributionShowsLiquidStructure) {
  // After melting, g(r) must show the LJ liquid signature: ~0 inside the
  // core (r < 0.9), a strong first peak near r ~ 1.1 sigma, and decay
  // toward 1 at long range.
  LjConfig cfg = small_config();
  cfg.fcc_cells = 5;  // 500 atoms for better statistics.
  LjSystem sys(cfg);
  sys.run(300);  // Melt.
  const auto g = sys.radial_distribution(60, 3.0);  // dr = 0.05.
  const double g_core = g[10];     // r ~ 0.5.
  double g_peak = 0.0;
  for (std::size_t b = 18; b <= 26; ++b) g_peak = std::max(g_peak, g[b]);
  double g_far = 0.0;
  for (std::size_t b = 50; b < 60; ++b) g_far += g[b] / 10.0;
  EXPECT_LT(g_core, 0.05);
  EXPECT_GT(g_peak, 1.8);
  EXPECT_NEAR(g_far, 1.0, 0.35);
}

TEST(LjSystem, CrystalHasSharperStructureThanLiquid) {
  LjConfig cfg = small_config();
  cfg.fcc_cells = 5;
  LjSystem crystal(cfg);        // t = 0: perfect lattice.
  LjSystem liquid(cfg);
  liquid.run(300);
  const auto gc = crystal.radial_distribution(60, 3.0);
  const auto gl = liquid.radial_distribution(60, 3.0);
  double peak_c = 0.0, peak_l = 0.0;
  for (std::size_t b = 0; b < 60; ++b) {
    peak_c = std::max(peak_c, gc[b]);
    peak_l = std::max(peak_l, gl[b]);
  }
  EXPECT_GT(peak_c, peak_l);  // Lattice peaks are sharper.
}

TEST(LjSystem, PositionUpdatesFavorLowBytes) {
  // The Section VII argument for DBA on positions: per-step deltas are
  // small (v*dt), so most changed position floats change only low bytes,
  // while forces churn all bytes.
  LjSystem sys(small_config());
  sys.run(20);  // Let the lattice melt a little.
  const auto pos_prev = sys.positions_f32();
  const auto f_prev = sys.forces_f32();
  sys.step();
  const auto pos_curr = sys.positions_f32();
  const auto f_curr = sys.forces_f32();
  const auto ps = dl::compare_arrays(pos_prev, pos_curr);
  const auto fs = dl::compare_arrays(f_prev, f_curr);
  EXPECT_GT(ps.frac_low2_covered(), fs.frac_low2_covered());
}

TEST(OffloadMd, BaselineCommFractionNearPaper) {
  // Section VII: data transfer takes 27 % of LAMMPS time on the baseline.
  const auto b = simulate_md_step(MdMode::kExplicitCopy, MdWorkload{},
                                  offload::default_calibration());
  EXPECT_NEAR(b.comm_fraction(), 0.27, 0.08);
}

TEST(OffloadMd, TecoImprovesEndToEnd) {
  const auto r =
      md_generality_report(MdWorkload{}, offload::default_calibration());
  // Paper: 21.5 % improvement; 17 % volume reduction; CXL 78 % / DBA 22 %.
  EXPECT_GT(r.improvement, 0.10);
  EXPECT_LT(r.improvement, 0.35);
  EXPECT_GT(r.volume_reduction, 0.05);
  EXPECT_LT(r.volume_reduction, 0.30);
  EXPECT_GT(r.cxl_contribution, r.dba_contribution);
  EXPECT_NEAR(r.cxl_contribution + r.dba_contribution, 1.0, 1e-9);
}

TEST(OffloadMd, ModesOrdered) {
  const auto& cal = offload::default_calibration();
  const MdWorkload w{};
  const auto base = simulate_md_step(MdMode::kExplicitCopy, w, cal);
  const auto cxl = simulate_md_step(MdMode::kTecoCxl, w, cal);
  const auto red = simulate_md_step(MdMode::kTecoReduction, w, cal);
  EXPECT_GT(base.total(), cxl.total());
  EXPECT_GE(cxl.total() + 1e-12, red.total());
  EXPECT_LT(red.bytes_to_device, cxl.bytes_to_device);  // DBA on positions.
  EXPECT_EQ(red.bytes_to_cpu, cxl.bytes_to_cpu);        // Forces untouched.
}

TEST(OffloadMd, VolumeScalesWithAtoms) {
  const auto& cal = offload::default_calibration();
  MdWorkload small{};
  small.n_atoms = 1'000'000;
  MdWorkload big{};
  big.n_atoms = 4'000'000;
  const auto a = simulate_md_step(MdMode::kTecoCxl, small, cal);
  const auto b = simulate_md_step(MdMode::kTecoCxl, big, cal);
  EXPECT_NEAR(static_cast<double>(b.bytes_to_cpu) / a.bytes_to_cpu, 4.0, 0.1);
}

}  // namespace
}  // namespace teco::md
