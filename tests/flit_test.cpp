// CXL flit-framing tests: the 94.3 % efficiency figure must be derivable.
#include <gtest/gtest.h>

#include "cxl/flit.hpp"
#include "cxl/phy.hpp"

namespace teco::cxl {
namespace {

TEST(Flit, DefaultLayoutIs528Bits) {
  const FlitConfig cfg;
  EXPECT_EQ(cfg.flit_payload_bytes(), 64u);
  EXPECT_EQ(cfg.flit_wire_bytes(), 66u);  // 528 bits.
}

TEST(Flit, SlotsPerPayload) {
  const FlitCodec codec;
  EXPECT_EQ(codec.slots_for_payload(64), 4u);   // Full line.
  EXPECT_EQ(codec.slots_for_payload(32), 2u);   // DBA(2) payload.
  EXPECT_EQ(codec.slots_for_payload(48), 3u);   // DBA(3) payload.
  EXPECT_EQ(codec.slots_for_payload(16), 1u);
  EXPECT_EQ(codec.slots_for_payload(1), 1u);    // Rounds up.
}

TEST(Flit, BurstWireBytes) {
  const FlitCodec codec;
  EXPECT_EQ(codec.wire_bytes_for_burst(0, 64), 0u);
  // One line: 4 data slots + 1 header slot = 5 slots = 2 flits = 132 B.
  EXPECT_EQ(codec.wire_bytes_for_burst(1, 64), 132u);
  // 16 lines: 64 data + 1 header = 65 slots = 17 flits.
  EXPECT_EQ(codec.wire_bytes_for_burst(16, 64), 17u * 66u);
}

TEST(Flit, ControlWireBytes) {
  const FlitCodec codec;
  EXPECT_EQ(codec.wire_bytes_for_control(0), 0u);
  EXPECT_EQ(codec.wire_bytes_for_control(1), 66u);
  EXPECT_EQ(codec.wire_bytes_for_control(4), 66u);   // One full flit.
  EXPECT_EQ(codec.wire_bytes_for_control(5), 132u);
}

TEST(Flit, DerivesThePapersEfficiency) {
  // The PhyConfig constant (94.3 %, from [20],[106]) must fall out of the
  // flit arithmetic for long 64 B line bursts, within rounding of the
  // header-amortization assumption.
  const FlitCodec codec;
  const PhyConfig phy;
  EXPECT_NEAR(codec.data_efficiency(64), phy.cxl_efficiency, 0.01);
}

TEST(Flit, TrimmedPayloadsAreProportionallyEfficient) {
  const FlitCodec codec;
  // A 32 B DBA payload occupies exactly half the slots of a full line; its
  // per-message header overhead is relatively larger, so efficiency dips
  // slightly (but only slightly) below the full-line figure.
  EXPECT_LT(codec.data_efficiency(32), codec.data_efficiency(64));
  EXPECT_NEAR(codec.data_efficiency(32), codec.data_efficiency(64), 0.03);
  // An unaligned payload wastes part of its last slot.
  EXPECT_LT(codec.data_efficiency(40), codec.data_efficiency(32));
}

TEST(Flit, MonotoneInBurstLength) {
  const FlitCodec codec;
  double prev = 0.0;
  for (const std::uint64_t n : {1ull, 2ull, 8ull, 64ull, 4096ull}) {
    const double eff =
        64.0 * n / codec.wire_bytes_for_burst(n, 64);
    EXPECT_GE(eff + 1e-9, prev);  // Longer bursts amortize headers.
    prev = eff;
  }
}

}  // namespace
}  // namespace teco::cxl
