// sim::Rng sampling-helper properties: distribution convergence and
// bit-identical double-run determinism (the arrival process's foundation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace {

using namespace teco;

TEST(RngProperty, ExponentialMeanConverges) {
  sim::Rng rng(42);
  const double mean = 3.5;
  const int n = 200000;
  double sum = 0.0;
  double lo = 1e300;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_exponential(mean);
    EXPECT_GT(x, 0.0);
    sum += x;
    lo = std::min(lo, x);
  }
  // Law of large numbers: the sample mean sits within ~1 % at n = 2e5
  // (sigma/sqrt(n) ~ 0.8 % of the mean).
  EXPECT_NEAR(sum / n, mean, 0.03 * mean);
  EXPECT_LT(lo, 1e-3 * mean);  // The left tail is actually sampled.
}

TEST(RngProperty, InterarrivalMeanIsReciprocalRate) {
  sim::Rng rng(7);
  const double rate = 48.0;  // requests/second
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.next_interarrival(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.03 / rate);
}

TEST(RngProperty, InterarrivalIsExponentialInDisguise) {
  // Same stream position => identical draw: the helper is exactly
  // next_exponential(1/rate), not an independent sampler.
  sim::Rng a(11);
  sim::Rng b(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_interarrival(4.0), b.next_exponential(0.25));
  }
}

TEST(RngProperty, LognormalMedianAndSigmaConverge) {
  sim::Rng rng(1234);
  const double median = 512.0;
  const double sigma = 0.5;
  const int n = 200000;
  double log_sum = 0.0;
  double log_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_lognormal(median, sigma);
    EXPECT_GT(x, 0.0);
    const double l = std::log(x);
    log_sum += l;
    log_sq += l * l;
  }
  const double log_mean = log_sum / n;
  const double log_var = log_sq / n - log_mean * log_mean;
  // ln(X) ~ N(ln median, sigma^2) by construction.
  EXPECT_NEAR(log_mean, std::log(median), 0.02);
  EXPECT_NEAR(std::sqrt(log_var), sigma, 0.02);
}

TEST(RngProperty, DoubleRunDeterminism) {
  // Two generators from one seed emit bit-identical helper sequences —
  // the property every seeded replay in the repo (arrival processes
  // included) rests on.
  sim::Rng a(0xfeedULL);
  sim::Rng b(0xfeedULL);
  for (int i = 0; i < 5000; ++i) {
    switch (i % 3) {
      case 0:
        EXPECT_EQ(a.next_exponential(2.0), b.next_exponential(2.0));
        break;
      case 1:
        EXPECT_EQ(a.next_interarrival(32.0), b.next_interarrival(32.0));
        break;
      default:
        EXPECT_EQ(a.next_lognormal(128.0, 0.5), b.next_lognormal(128.0, 0.5));
        break;
    }
  }
  // And a different seed diverges immediately.
  sim::Rng c(0xbeefULL);
  EXPECT_NE(a.next_exponential(2.0), c.next_exponential(2.0));
}

}  // namespace
