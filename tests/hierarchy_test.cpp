// Cache-hierarchy tests, including the Section IV-B writeback premise.
#include <gtest/gtest.h>

#include <vector>

#include "mem/hierarchy.hpp"
#include "offload/multi_device.hpp"
#include "offload/calibration.hpp"
#include "dl/model_zoo.hpp"

namespace teco::mem {
namespace {

TEST(Hierarchy, HitAfterFill) {
  CacheHierarchy h;
  h.load(0);
  const auto s0 = h.stats();
  EXPECT_EQ(s0.memory_fetches, 1u);
  h.load(0);  // L1 hit.
  const auto s1 = h.stats();
  EXPECT_EQ(s1.l1.hits, 1u);
  EXPECT_EQ(s1.memory_fetches, 1u);
}

TEST(Hierarchy, DirtyLineCascadesOnEviction) {
  // Tiny L1 (2 lines direct-ish) to force eviction quickly.
  CacheHierarchy h(CacheConfig{2 * 64, 1, 64}, l2_config(), llc_config());
  h.store(0);
  h.store(2 * 64);  // Same L1 set: evicts dirty line 0 into L2.
  const auto s = h.stats();
  EXPECT_EQ(s.memory_writebacks, 0u);  // Stopped at L2.
  // The line is findable again without a memory fetch.
  h.load(0);
  EXPECT_EQ(h.stats().memory_fetches, 2u);  // Only the two initial fills.
}

TEST(Hierarchy, FlushDrainsDirtyDataToMemory) {
  CacheHierarchy h;
  std::vector<Addr> written;
  h.set_mem_writeback_fn([&](Addr a) { written.push_back(a); });
  h.store(0);
  h.store(64);
  h.load(128);
  EXPECT_EQ(h.flush_all(), 2u);
  EXPECT_EQ(written.size(), 2u);
  EXPECT_EQ(h.flush_all(), 0u);  // Idempotent.
}

TEST(Hierarchy, StreamRegionTouchesEveryLine) {
  CacheHierarchy h;
  h.stream_region(0, 64 * 100, /*writes=*/true);
  h.flush_all();
  EXPECT_EQ(h.stats().memory_writebacks, 100u);
}

TEST(Hierarchy, ResetClears) {
  CacheHierarchy h;
  h.store(0);
  h.reset();
  const auto s = h.stats();
  EXPECT_EQ(s.memory_fetches, 0u);
  EXPECT_EQ(s.l1.hits + s.l1.misses, 0u);
}

TEST(AdamSweep, OneWritebackPerParameterLine) {
  // Section IV-B's premise: the vectorized Adam sweep updates whole cache
  // lines once, so the update protocol transfers each parameter line
  // exactly once per step. Validate on the simulated hierarchy.
  const std::uint64_t n_params = 1 << 18;  // 256k params = 16k lines.
  const auto r = simulate_adam_sweep(n_params);
  EXPECT_EQ(r.param_lines, (n_params * 4) / kLineBytes);
  EXPECT_EQ(r.param_writebacks, r.param_lines);
  // m and v are written back too (2 more regions).
  EXPECT_EQ(r.other_writebacks, 2 * r.param_lines);
}

TEST(AdamSweep, WorkingSetExceedsLlc) {
  // 16 MiB LLC, 4 arrays x 4 MB: the sweep streams through and the counts
  // still come out exact (no double writebacks from thrashing).
  const std::uint64_t n_params = 1 << 20;
  const auto r = simulate_adam_sweep(n_params);
  EXPECT_EQ(r.param_writebacks, r.param_lines);
}

}  // namespace
}  // namespace teco::mem

namespace teco::offload {
namespace {

TEST(MultiDevice, MatchesSingleDeviceAtOne) {
  const auto& cal = default_calibration();
  MultiDeviceConfig mdc;
  mdc.devices = 1;
  mdc.global_batch = 8;
  const auto md = simulate_multi_device_step(RuntimeKind::kTecoReduction,
                                             dl::bert_large_cased(), mdc,
                                             cal);
  const auto sd = simulate_step(RuntimeKind::kTecoReduction,
                                dl::bert_large_cased(), 8, cal);
  EXPECT_DOUBLE_EQ(md.step_total, sd.total());
  EXPECT_DOUBLE_EQ(md.grad_reduce, 0.0);
}

TEST(MultiDevice, ValidatesInputs) {
  const auto& cal = default_calibration();
  MultiDeviceConfig mdc;
  mdc.devices = 0;
  EXPECT_THROW(simulate_multi_device_step(RuntimeKind::kTecoCxl,
                                          dl::gpt2(), mdc, cal),
               std::invalid_argument);
  mdc.devices = 3;
  mdc.global_batch = 8;
  EXPECT_THROW(simulate_multi_device_step(RuntimeKind::kTecoCxl,
                                          dl::gpt2(), mdc, cal),
               std::invalid_argument);
}

TEST(MultiDevice, CommShareGrowsWithDevices) {
  // Fixed global batch: per-device compute shrinks while per-device
  // communication stays constant — TECO's advantage grows.
  const auto& cal = default_calibration();
  const auto pts =
      scaling_sweep(dl::bert_large_cased(), 32, {1, 2, 4, 8}, cal);
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].baseline_comm_fraction,
              pts[i - 1].baseline_comm_fraction - 1e-9);
    EXPECT_GT(pts[i].speedup, 1.0);
  }
  EXPECT_GT(pts.back().speedup, pts.front().speedup);
}

TEST(MultiDevice, SharedUpstreamSlowsBothAndWidensGap) {
  const auto& cal = default_calibration();
  MultiDeviceConfig priv{4, 32, false}, shared{4, 32, true};
  const auto base_p = simulate_multi_device_step(
      RuntimeKind::kZeroOffload, dl::bert_large_cased(), priv, cal);
  const auto base_s = simulate_multi_device_step(
      RuntimeKind::kZeroOffload, dl::bert_large_cased(), shared, cal);
  const auto teco_p = simulate_multi_device_step(
      RuntimeKind::kTecoReduction, dl::bert_large_cased(), priv, cal);
  const auto teco_s = simulate_multi_device_step(
      RuntimeKind::kTecoReduction, dl::bert_large_cased(), shared, cal);
  EXPECT_GT(base_s.step_total, base_p.step_total);
  EXPECT_GE(teco_s.step_total, teco_p.step_total);
  // Contention hurts the transfer-bound baseline more.
  EXPECT_GT(base_s.step_total / teco_s.step_total,
            base_p.step_total / teco_p.step_total);
  // Single device: topology is irrelevant.
  MultiDeviceConfig one{1, 8, true};
  const auto a = simulate_multi_device_step(RuntimeKind::kTecoCxl,
                                            dl::gpt2(), one, cal);
  one.shared_upstream = false;
  const auto b = simulate_multi_device_step(RuntimeKind::kTecoCxl,
                                            dl::gpt2(), one, cal);
  EXPECT_DOUBLE_EQ(a.step_total, b.step_total);
}

TEST(MultiDevice, ReductionCostScalesWithDevices) {
  const auto& cal = default_calibration();
  MultiDeviceConfig a{2, 32}, b{8, 32};
  const auto ra = simulate_multi_device_step(RuntimeKind::kTecoReduction,
                                             dl::bert_large_cased(), a, cal);
  const auto rb = simulate_multi_device_step(RuntimeKind::kTecoReduction,
                                             dl::bert_large_cased(), b, cal);
  EXPECT_NEAR(rb.grad_reduce / ra.grad_reduce, 7.0, 1e-9);
}

}  // namespace
}  // namespace teco::offload
