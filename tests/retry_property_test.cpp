// Property test: the executable Monte-Carlo retry path in cxl::Channel
// converges to the analytic RetryModel. The empirical transmissions-per-
// flit ((flits + retried_flits) / flits) must approach
// expected_transmissions(), and hence the empirical throughput derate must
// approach throughput_derate(), for any seed.
#include <gtest/gtest.h>

#include <cstdint>

#include "cxl/channel.hpp"
#include "cxl/packet.hpp"
#include "cxl/reliability.hpp"
#include "sim/time.hpp"

namespace teco {
namespace {

constexpr double kBandwidth = 16.0 * sim::kGBps;
constexpr sim::Time kLatency = sim::ns(400);

cxl::Packet line_packet() {
  return cxl::data_packet(cxl::MessageType::kFlushData, 0x1000, 64);
}

class RetryConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetryConvergence, StreamPathMatchesAnalyticModel) {
  cxl::RetryModel model;
  model.bit_error_rate = 1e-4;
  cxl::Channel ch("retry", kBandwidth, kLatency);
  ch.enable_retry(model, GetParam());

  // 64-byte lines are exactly one flit each, so flit counts are exact.
  constexpr std::uint64_t kFlits = 400'000;
  ch.submit_stream(0.0, line_packet(), kFlits);

  const auto& st = ch.stats();
  ASSERT_EQ(st.flits, kFlits);
  const double empirical_tx =
      static_cast<double>(st.flits + st.retried_flits) /
      static_cast<double>(st.flits);
  const double expected_tx = model.expected_transmissions();
  // Binomial noise at this sample size is well under 1 %.
  EXPECT_NEAR(empirical_tx, expected_tx, 0.01 * (expected_tx - 1.0) * 5.0);

  const double empirical_derate =
      static_cast<double>(st.flits) /
      static_cast<double>(st.flits + st.retried_flits);
  EXPECT_NEAR(empirical_derate, model.throughput_derate(), 5e-3);
}

TEST_P(RetryConvergence, PerPacketPathMatchesAnalyticModel) {
  cxl::RetryModel model;
  model.bit_error_rate = 2e-4;
  cxl::Channel ch("retry", kBandwidth, kLatency);
  ch.enable_retry(model, GetParam() + 17);

  constexpr std::uint64_t kPackets = 60'000;
  sim::Time t = 0.0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    t = ch.submit(t, line_packet()).finished;
  }
  const auto& st = ch.stats();
  ASSERT_EQ(st.flits, kPackets);
  const double empirical_tx =
      static_cast<double>(st.flits + st.retried_flits) /
      static_cast<double>(st.flits);
  const double excess = model.expected_transmissions() - 1.0;
  EXPECT_NEAR(empirical_tx - 1.0, excess, 0.10 * excess);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryConvergence,
                         ::testing::Values(1u, 2u, 42u, 0xfeedu));

TEST(RetryPath, DeterministicUnderSameSeed) {
  cxl::RetryModel model;
  model.bit_error_rate = 1e-4;
  auto run = [&] {
    cxl::Channel ch("retry", kBandwidth, kLatency);
    ch.enable_retry(model, 7);
    ch.submit_stream(0.0, line_packet(), 50'000);
    return ch.stats().retried_flits;
  };
  const auto a = run();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, run());
}

TEST(RetryPath, SpecBerIsEffectivelyFree) {
  cxl::RetryModel model;  // 1e-12 spec target.
  cxl::Channel ch("retry", kBandwidth, kLatency);
  ch.enable_retry(model, 3);
  ch.submit_stream(0.0, line_packet(), 1'000'000);
  EXPECT_EQ(ch.stats().retried_flits, 0u);
  EXPECT_EQ(ch.stats().retry_time, 0.0);
}

TEST(RetryPath, RetryTimeExtendsBusyTimeConsistently) {
  cxl::RetryModel model;
  model.bit_error_rate = 1e-4;

  cxl::Channel plain("plain", kBandwidth, kLatency);
  plain.submit_stream(0.0, line_packet(), 100'000);

  cxl::Channel retried("retried", kBandwidth, kLatency);
  retried.enable_retry(model, 11);
  retried.submit_stream(0.0, line_packet(), 100'000);

  const auto& pr = plain.stats();
  const auto& rr = retried.stats();
  EXPECT_GT(rr.retry_time, 0.0);
  EXPECT_DOUBLE_EQ(rr.busy_time, pr.busy_time + rr.retry_time);
  EXPECT_GT(rr.last_finish, pr.last_finish);
}

TEST(RetryPath, DisableRestoresCleanTiming) {
  cxl::RetryModel model;
  model.bit_error_rate = 1e-3;
  cxl::Channel ch("retry", kBandwidth, kLatency);
  ch.enable_retry(model, 5);
  EXPECT_TRUE(ch.retry_enabled());
  ch.disable_retry();
  EXPECT_FALSE(ch.retry_enabled());
  ch.submit_stream(0.0, line_packet(), 10'000);
  EXPECT_EQ(ch.stats().retried_flits, 0u);
}

}  // namespace
}  // namespace teco
