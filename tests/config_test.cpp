// Error-path coverage for the AI-model configuration parser, including the
// fault-tolerance keys (ft_mode / ft_checkpoint_interval / ft_seed).
#include "core/config.hpp"

#include <gtest/gtest.h>

#include "check/protocol_checker.hpp"

namespace teco {
namespace {

TEST(ConfigParser, ParsesAllKnownKeys) {
  const auto parsed = core::parse_config(R"(
    # full configuration
    protocol        = invalidation
    dba             = off
    act_aft_steps   = 42
    dirty_bytes     = 3
    giant_cache_mib = 256
    trace           = on
    check           = count
    ft_mode         = incremental
    ft_checkpoint_interval = 25
    ft_seed         = 99
    obs_jsonl_path  = /tmp/steps.jsonl
    obs_trace_path  = /tmp/trace.json
    obs_step_log    = on
  )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.unknown_keys.empty());
  EXPECT_EQ(parsed.session.protocol, coherence::Protocol::kInvalidation);
  EXPECT_FALSE(parsed.session.dba_enabled);
  EXPECT_EQ(parsed.session.act_aft_steps, 42u);
  EXPECT_EQ(parsed.session.dirty_bytes, 3u);
  EXPECT_EQ(parsed.session.giant_cache_capacity, 256ull << 20);
  EXPECT_TRUE(parsed.session.enable_trace);
  EXPECT_EQ(parsed.session.check, check::CheckLevel::kCount);
  EXPECT_EQ(parsed.session.ft_mode, core::FtMode::kIncremental);
  EXPECT_EQ(parsed.session.ft_checkpoint_interval, 25u);
  EXPECT_EQ(parsed.session.ft_seed, 99u);
  EXPECT_EQ(parsed.session.obs_jsonl_path, "/tmp/steps.jsonl");
  EXPECT_EQ(parsed.session.obs_trace_path, "/tmp/trace.json");
  EXPECT_TRUE(parsed.session.obs_step_log);
}

TEST(ConfigParser, ObsStepLogRejectsNonBool) {
  EXPECT_FALSE(core::parse_config("obs_step_log = verbose").ok());
  EXPECT_TRUE(core::parse_config("obs_step_log = off").ok());
}

TEST(ConfigParser, UnknownKeysAreCollectedNotFatal) {
  const auto parsed = core::parse_config("frobnicate = 7\ndba = on\n");
  EXPECT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.unknown_keys.size(), 1u);
  EXPECT_EQ(parsed.unknown_keys[0], "frobnicate");
  EXPECT_TRUE(parsed.session.dba_enabled);
}

TEST(ConfigParser, MissingEqualsIsAnError) {
  const auto parsed = core::parse_config("protocol update\n");
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_NE(parsed.errors[0].find("key = value"), std::string::npos);
}

TEST(ConfigParser, MalformedValuesReportLineNumbers) {
  const auto parsed = core::parse_config(
      "protocol = sideways\n"
      "dba = maybe\n"
      "act_aft_steps = minus-one\n"
      "giant_cache_mib = 0\n"
      "trace = sometimes\n"
      "check = pedantic\n");
  EXPECT_EQ(parsed.errors.size(), 6u);
  EXPECT_NE(parsed.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(parsed.errors[5].find("line 6"), std::string::npos);
}

TEST(ConfigParser, DirtyBytesOutOfRange) {
  EXPECT_FALSE(core::parse_config("dirty_bytes = 5").ok());
  EXPECT_FALSE(core::parse_config("dirty_bytes = -1").ok());
  EXPECT_FALSE(core::parse_config("dirty_bytes = two").ok());
  EXPECT_TRUE(core::parse_config("dirty_bytes = 4").ok());
  EXPECT_TRUE(core::parse_config("dirty_bytes = 0").ok());
}

TEST(ConfigParser, ActAftStepsRejectsNonIntegers) {
  EXPECT_FALSE(core::parse_config("act_aft_steps = 1.5").ok());
  EXPECT_FALSE(core::parse_config("act_aft_steps = 10x").ok());
  EXPECT_TRUE(core::parse_config("act_aft_steps = 0").ok());
}

TEST(ConfigParser, FtModeRejectsUnknownValues) {
  const auto parsed = core::parse_config("ft_mode = always");
  ASSERT_EQ(parsed.errors.size(), 1u);
  EXPECT_NE(parsed.errors[0].find("ft_mode"), std::string::npos);
  EXPECT_EQ(parsed.session.ft_mode, core::FtMode::kOff);
}

TEST(ConfigParser, FtCheckpointIntervalMustBePositive) {
  EXPECT_FALSE(core::parse_config("ft_checkpoint_interval = 0").ok());
  EXPECT_FALSE(core::parse_config("ft_checkpoint_interval = ten").ok());
  EXPECT_FALSE(core::parse_config("ft_checkpoint_interval = -5").ok());
  const auto ok = core::parse_config("ft_checkpoint_interval = 1");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.session.ft_checkpoint_interval, 1u);
}

TEST(ConfigParser, FtSeedRejectsNegativeAndJunk) {
  EXPECT_FALSE(core::parse_config("ft_seed = -1").ok());
  EXPECT_FALSE(core::parse_config("ft_seed = 0xbeef").ok());
  const auto ok = core::parse_config("ft_seed = 0");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.session.ft_seed, 0u);
}

TEST(ConfigParser, CheckHbImpliesStrictAndRoundTrips) {
  const auto parsed = core::parse_config("check = hb");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.session.check, check::CheckLevel::kStrict);
  EXPECT_TRUE(parsed.session.check_hb);
  // The serializer writes the hb spelling back, not plain "strict".
  const std::string text = core::to_config_text(parsed.session);
  EXPECT_NE(text.find("check = hb"), std::string::npos);
  const auto again = core::parse_config(text);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.session.check_hb);
  EXPECT_EQ(again.session.check, check::CheckLevel::kStrict);
}

TEST(ConfigParser, CheckLastValueWins) {
  // A later check line fully replaces an earlier one — including turning
  // the hb recorder back off.
  const auto downgraded = core::parse_config("check = hb\ncheck = count\n");
  ASSERT_TRUE(downgraded.ok());
  EXPECT_FALSE(downgraded.session.check_hb);
  EXPECT_EQ(downgraded.session.check, check::CheckLevel::kCount);
  const auto upgraded = core::parse_config("check = off\ncheck = hb\n");
  ASSERT_TRUE(upgraded.ok());
  EXPECT_TRUE(upgraded.session.check_hb);
  EXPECT_EQ(upgraded.session.check, check::CheckLevel::kStrict);
}

TEST(ConfigParser, RoundTripsThroughSerializer) {
  core::SessionConfig cfg;
  cfg.protocol = coherence::Protocol::kInvalidation;
  cfg.dba_enabled = false;
  cfg.act_aft_steps = 7;
  cfg.dirty_bytes = 1;
  cfg.check = check::CheckLevel::kOff;
  cfg.ft_mode = core::FtMode::kFull;
  cfg.ft_checkpoint_interval = 12;
  cfg.ft_seed = 31337;
  cfg.obs_jsonl_path = "/tmp/s.jsonl";
  cfg.obs_step_log = true;
  const auto parsed = core::parse_config(core::to_config_text(cfg));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.unknown_keys.empty());
  EXPECT_EQ(parsed.session.ft_mode, core::FtMode::kFull);
  EXPECT_EQ(parsed.session.ft_checkpoint_interval, 12u);
  EXPECT_EQ(parsed.session.ft_seed, 31337u);
  EXPECT_EQ(parsed.session.dirty_bytes, 1u);
  EXPECT_EQ(parsed.session.obs_jsonl_path, "/tmp/s.jsonl");
  EXPECT_TRUE(parsed.session.obs_step_log);
  // Empty path keys are omitted from the serialized text entirely.
  EXPECT_EQ(core::to_config_text(core::SessionConfig{})
                .find("obs_trace_path"),
            std::string::npos);
}

TEST(ConfigParser, CausalKeysParseAndRoundTrip) {
  const auto parsed = core::parse_config(
      "obs_causal           = on\n"
      "obs_causal_max_nodes = 4096\n"
      "obs_trace_max_spans  = 128\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.unknown_keys.empty());
  EXPECT_TRUE(parsed.session.obs_causal);
  EXPECT_EQ(parsed.session.obs_causal_max_nodes, 4096u);
  EXPECT_EQ(parsed.session.obs_trace_max_spans, 128u);

  const auto again = core::parse_config(core::to_config_text(parsed.session));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.session.obs_causal);
  EXPECT_EQ(again.session.obs_causal_max_nodes, 4096u);
  EXPECT_EQ(again.session.obs_trace_max_spans, 128u);

  EXPECT_FALSE(core::parse_config("obs_causal = maybe").ok());
  EXPECT_FALSE(core::parse_config("obs_causal_max_nodes = 0").ok());
  EXPECT_FALSE(core::parse_config("obs_causal_max_nodes = -4").ok());
}

TEST(ConfigParser, ServeKeysParseAndRoundTrip) {
  const auto parsed = core::parse_config(
      "serve_arrival  = bursty\n"
      "serve_rate     = 12.5\n"
      "serve_slo_ms   = 100\n"
      "serve_sessions = 64\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.unknown_keys.empty());
  EXPECT_EQ(parsed.session.serve_arrival, serve::ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(parsed.session.serve_rate, 12.5);
  EXPECT_DOUBLE_EQ(parsed.session.serve_slo_ms, 100.0);
  EXPECT_EQ(parsed.session.serve_sessions, 64u);

  const auto again = core::parse_config(core::to_config_text(parsed.session));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.session.serve_arrival, serve::ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(again.session.serve_rate, 12.5);
  EXPECT_DOUBLE_EQ(again.session.serve_slo_ms, 100.0);
  EXPECT_EQ(again.session.serve_sessions, 64u);
}

TEST(ConfigParser, ServeKeysRejectMalformedValues) {
  EXPECT_FALSE(core::parse_config("serve_arrival = uniform").ok());
  EXPECT_FALSE(core::parse_config("serve_rate = 0").ok());
  EXPECT_FALSE(core::parse_config("serve_rate = fast").ok());
  EXPECT_FALSE(core::parse_config("serve_slo_ms = -3").ok());
  EXPECT_FALSE(core::parse_config("serve_sessions = 0").ok());
  EXPECT_TRUE(core::parse_config("serve_rate = 0.5").ok());
}

TEST(ConfigParser, ServeConfigMapsSessionKnobs) {
  core::SessionConfig cfg;
  cfg.serve_arrival = serve::ArrivalKind::kTrace;
  cfg.serve_rate = 96.0;
  cfg.serve_slo_ms = 120.0;
  cfg.serve_sessions = 48;
  cfg.tier_policy = tier::Policy::kKnapsack;
  cfg.tier_prefetch_depth = 3;
  cfg.tier_hbm_bytes = 2ull << 30;
  const serve::ServeConfig s = core::serve_config(cfg);
  EXPECT_EQ(s.arrival, serve::ArrivalKind::kTrace);
  EXPECT_DOUBLE_EQ(s.rate_rps, 96.0);
  EXPECT_DOUBLE_EQ(s.slo_ttft, sim::ms(120.0));
  EXPECT_EQ(s.max_sessions, 48u);
  EXPECT_EQ(s.policy, tier::Policy::kKnapsack);
  EXPECT_EQ(s.prefetch_depth, 3u);
  EXPECT_EQ(s.hbm_kv_bytes, 2ull << 30);
}

TEST(ConfigParser, FabricKeysParseAndRoundTrip) {
  const auto parsed = core::parse_config(
      "fabric_nodes      = 4\n"
      "fabric_pool_bytes = 1048576\n"
      "fabric_port_gbps  = 12.5\n"
      "fabric_reduce     = pool_staging\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.unknown_keys.empty());
  EXPECT_EQ(parsed.session.fabric_nodes, 4u);
  EXPECT_EQ(parsed.session.fabric_pool_bytes, 1048576u);
  EXPECT_DOUBLE_EQ(parsed.session.fabric_port_gbps, 12.5);
  EXPECT_EQ(parsed.session.fabric_reduce, fabric::ReduceStrategy::kPoolStaging);

  const auto again = core::parse_config(core::to_config_text(parsed.session));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.session.fabric_nodes, 4u);
  EXPECT_EQ(again.session.fabric_pool_bytes, 1048576u);
  EXPECT_DOUBLE_EQ(again.session.fabric_port_gbps, 12.5);
  EXPECT_EQ(again.session.fabric_reduce, fabric::ReduceStrategy::kPoolStaging);
}

TEST(ConfigParser, FabricKeysRejectMalformedValues) {
  EXPECT_FALSE(core::parse_config("fabric_nodes = 0").ok());
  EXPECT_FALSE(core::parse_config("fabric_nodes = 65").ok());
  EXPECT_FALSE(core::parse_config("fabric_nodes = two").ok());
  EXPECT_FALSE(core::parse_config("fabric_pool_bytes = 0").ok());
  EXPECT_FALSE(core::parse_config("fabric_port_gbps = -1").ok());
  EXPECT_FALSE(core::parse_config("fabric_port_gbps = fast").ok());
  EXPECT_FALSE(core::parse_config("fabric_reduce = ring").ok());
  EXPECT_TRUE(core::parse_config("fabric_reduce = per_link").ok());
}

TEST(ConfigParser, FabricConfigMapsSessionKnobs) {
  core::SessionConfig cfg;
  cfg.fabric_nodes = 8;
  cfg.fabric_pool_bytes = 4ull << 20;
  cfg.fabric_port_gbps = 24.0;
  cfg.fabric_reduce = fabric::ReduceStrategy::kPerLink;
  cfg.dba_enabled = false;
  cfg.dirty_bytes = 3;
  cfg.check = check::CheckLevel::kOff;
  const fabric::FabricConfig f = core::fabric_config(cfg);
  EXPECT_EQ(f.nodes, 8u);
  EXPECT_EQ(f.pool_bytes, 4ull << 20);
  EXPECT_DOUBLE_EQ(f.port_gbps, 24.0);
  EXPECT_EQ(f.reduce, fabric::ReduceStrategy::kPerLink);
  EXPECT_FALSE(f.dba_enabled);
  EXPECT_EQ(f.dirty_bytes, 3u);
  EXPECT_FALSE(f.check);
  EXPECT_DOUBLE_EQ(f.node_phy.raw_bandwidth, cfg.phy.raw_bandwidth);
}

TEST(ConfigParser, MissingFileIsReported) {
  const auto parsed = core::load_config_file("/nonexistent/teco.cfg");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.errors[0].find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace teco
