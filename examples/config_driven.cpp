// Config-file-driven session: the Section V-A workflow.
//
// Loads the DBA hyperparameters from an AI-model configuration file
// (examples/teco.cfg by default, or argv[1]) and runs a short coherent
// training loop under it.
//
// Usage: ./config_driven [path/to/teco.cfg]
#include <cstdio>
#include <vector>

#include "core/config.hpp"
#include "core/teco.hpp"

int main(int argc, char** argv) {
  using namespace teco;
  const std::string path = argc > 1 ? argv[1] : "examples/teco.cfg";

  auto parsed = core::load_config_file(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "falling back to built-in defaults (%s)\n",
                 parsed.errors.front().c_str());
    parsed = core::parse_config(
        "protocol = update\ndba = on\nact_aft_steps = 50\ndirty_bytes = 2\n"
        "giant_cache_mib = 64\n");
  }
  for (const auto& k : parsed.unknown_keys) {
    std::fprintf(stderr, "warning: unknown config key '%s'\n", k.c_str());
  }

  std::puts("Effective configuration:");
  std::fputs(core::to_config_text(parsed.session).c_str(), stdout);
  std::puts("");

  // A short coherent run under the loaded config.
  auto scfg = parsed.session;
  scfg.act_aft_steps = std::min<std::size_t>(scfg.act_aft_steps, 60);
  core::Session session(scfg);
  const std::size_t n = 4096;
  const auto params = session.allocate_parameters("demo.params", n * 4);
  const auto grads = session.allocate_gradients("demo.grads", n * 4);

  std::vector<float> master(n, 1.0f), g(n, 0.0f);
  for (std::size_t step = 0; step < 100; ++step) {
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = 1e-3f * static_cast<float>((i + step) % 7);
    }
    session.device_write_gradients(grads, g);
    session.backward_complete();
    session.check_activation(step);
    for (std::size_t i = 0; i < n; ++i) master[i] -= 1e-4f * g[i];
    session.cpu_write_parameters(params, master);
    session.optimizer_step_complete();
  }

  const auto& st = session.stats();
  std::printf("100 steps complete: pushes=%llu, DBA-trimmed=%llu, "
              "demand fetches=%llu, fallbacks=%llu\n",
              static_cast<unsigned long long>(st.update_pushes),
              static_cast<unsigned long long>(st.dba_trimmed_lines),
              static_cast<unsigned long long>(st.demand_fetches),
              static_cast<unsigned long long>(st.protocol_fallbacks));
  std::printf("wire volume: %.2f MiB down / %.2f MiB up, simulated link "
              "time %.3f ms\n",
              session.link()
                      .channel(cxl::Direction::kCpuToDevice)
                      .stats()
                      .payload_bytes /
                  1048576.0,
              session.link()
                      .channel(cxl::Direction::kDeviceToCpu)
                      .stats()
                      .payload_bytes /
                  1048576.0,
              session.now() * 1e3);
  return 0;
}
