// Fine-tuning a large transformer with tensor offloading: what does a
// training step cost under each runtime?
//
// Usage: ./bert_finetune [model-name] [batch] [--json trace.json]
//   model-name: GPT2 | Albert-xxlarge-v1 | Bert-large-cased | T5-large |
//               GCNII | GPT2-Medium | GPT2-Large | GPT2-11B
//   default: Bert-large-cased, batch 4 (the paper's motivation setup).
//   --json additionally exports the two step timelines as Chrome
//   trace_event JSON (chrome://tracing, ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/teco.hpp"
#include "core/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace teco;
  std::vector<std::string> pos;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pos.emplace_back(argv[i]);
    }
  }
  const std::string name = !pos.empty() ? pos[0] : "Bert-large-cased";
  const auto batch =
      pos.size() > 1 ? static_cast<std::uint32_t>(std::atoi(pos[1].c_str()))
                     : 4u;

  dl::ModelConfig model;
  try {
    model = dl::model_by_name(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    return 1;
  }
  const auto& cal = offload::default_calibration();
  if (!offload::fits_on_gpu(model, batch)) {
    std::printf("%s at batch %u does not fit in 32 GB GPU memory under "
                "ZeRO-Offload (the paper's N/A cells).\n", name.c_str(),
                batch);
    return 0;
  }

  std::printf("%s: %.0fM parameters, %u layers, hidden %u, giant cache "
              "%.0f MiB, batch %u\n\n",
              model.name.c_str(), model.n_params / 1e6, model.n_layers,
              model.hidden_size, model.giant_cache_bytes / (1024.0 * 1024.0),
              batch);

  core::TextTable t("Per-step cost by runtime");
  t.set_header({"Runtime", "fwd+bwd", "grad xfer", "CPU clip", "CPU Adam",
                "param xfer", "step total", "comm share", "speedup"});
  const auto base = offload::simulate_step(offload::RuntimeKind::kZeroOffload,
                                           model, batch, cal);
  for (const auto kind :
       {offload::RuntimeKind::kZeroOffload, offload::RuntimeKind::kZeroOffloadDpu,
        offload::RuntimeKind::kCxlInvalidation, offload::RuntimeKind::kTecoCxl,
        offload::RuntimeKind::kTecoReduction}) {
    const auto s = offload::simulate_step(kind, model, batch, cal);
    t.add_row({std::string(offload::to_string(kind)),
               core::TextTable::ms(s.forward_backward),
               core::TextTable::ms(s.grad_transfer_exposed),
               core::TextTable::ms(s.grad_optimizer),
               core::TextTable::ms(s.param_optimizer),
               core::TextTable::ms(s.param_transfer_exposed),
               core::TextTable::ms(s.total()),
               core::TextTable::pct(s.comm_fraction()),
               core::TextTable::fmt(base.total() / s.total()) + "x"});
  }
  std::fputs(t.to_string().c_str(), stdout);

  // Visualize the overlap structure of the two extremes.
  std::string trace_json = "[";
  int pid = 0;
  for (const auto kind : {offload::RuntimeKind::kZeroOffload,
                          offload::RuntimeKind::kTecoReduction}) {
    std::printf("\nTimeline (%s):\n",
                std::string(offload::to_string(kind)).c_str());
    const auto g = core::step_gantt(kind, model, batch, cal);
    std::fputs(g.render().c_str(), stdout);
    if (!json_path.empty()) {
      // Splice both runtimes into one trace (one viewer "process" each):
      // strip each fragment's array brackets and concatenate.
      auto frag = core::to_chrome_trace_json(
          g, model.name + " / " + std::string(offload::to_string(kind)), {},
          ++pid);
      frag = frag.substr(1, frag.find_last_of(']') - 1);
      if (trace_json.size() > 1) trace_json += ",";
      trace_json += frag;
    }
  }
  if (!json_path.empty()) {
    trace_json += "]\n";
    std::ofstream(json_path) << trace_json;
    std::printf("\nChrome trace written to %s\n", json_path.c_str());
  }

  const auto vol = offload::volume_report(offload::RuntimeKind::kTecoReduction,
                                          model, batch, cal);
  std::printf("\nPer-step wire volume: params %.0f -> %.0f MiB "
              "(DBA cuts %.0f%%), gradients %.0f MiB.\n",
              vol.base_to_device / (1024.0 * 1024.0),
              vol.treat_to_device / (1024.0 * 1024.0),
              100 * vol.param_volume_reduction,
              vol.treat_to_cpu / (1024.0 * 1024.0));
  std::printf("Exposed communication cut by TECO-Reduction: %.1f%%.\n",
              100 * vol.comm_overhead_reduction);
  return 0;
}
