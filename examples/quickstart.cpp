// Quickstart: train a real model through the TECO coherent domain.
//
// Mirrors the paper's Listing 1: the only TECO-specific calls in the
// training loop are check_activation(step) and the fences hidden inside
// backward_complete() / optimizer_step_complete(). Parameters and
// gradients flow through the giant cache with real bytes — including DBA's
// low-byte splice once it activates — while Adam runs on the CPU master
// copy, exactly like ZeRO-Offload + TECO.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <vector>

#include "core/teco.hpp"

int main() {
  using namespace teco;

  // 1. Configure the coherent domain (defaults follow the paper:
  //    update protocol, act_aft_steps = 500, dirty_bytes = 2).
  core::SessionConfig scfg;
  scfg.act_aft_steps = 100;  // Activate DBA early for the demo.
  core::Session session(scfg);

  // 2. A real model + task, trained with real FP32 Adam.
  const auto task = dl::make_classification_task();
  dl::Mlp model(dl::default_model_for(task));
  const std::size_t n = model.n_params();
  dl::Adam adam(n);
  std::vector<float> master(model.params().begin(), model.params().end());

  // 3. Map the tensors into the giant cache.
  const auto params = session.allocate_parameters("mlp.params", n * 4);
  const auto grads = session.allocate_gradients("mlp.grads", n * 4);
  session.cpu_write_parameters(params, master);
  session.optimizer_step_complete();

  // 4. Listing-1 training loop.
  sim::Rng data_rng(7);
  const auto& cls = std::get<dl::ClassificationTask>(task);
  float loss = 0.0f;
  for (std::size_t step = 0; step < 300; ++step) {
    // Accelerator: forward/backward on the giant-cache parameter copy.
    model.load_params(session.device_read_parameters(params, n));
    const auto batch = cls.sample(32, data_rng);
    model.forward(batch.inputs);
    loss = model.backward(batch.targets);

    // Gradients stream home line-by-line during backward.
    session.device_write_gradients(grads,
                                   {model.grads().data(), model.grads().size()});
    session.backward_complete();  // CXLFENCE().

    session.check_activation(step);  // The Listing-1 integration point.

    // CPU: clip + Adam on the master copy; updates stream to the device.
    auto g = session.cpu_read_gradients(grads, n);
    adam.clip_gradients(g);
    adam.step(master, g);
    session.cpu_write_parameters(params, master);
    session.optimizer_step_complete();  // CXLFENCE() + flush.

    if (step % 50 == 0) {
      std::printf("step %3zu  loss %.4f  dba=%s\n", step, loss,
                  session.dba_active() ? "on" : "off");
    }
  }

  // 5. What happened on the interconnect?
  const auto& s = session.stats();
  const auto& down = session.link().channel(cxl::Direction::kCpuToDevice);
  const auto& up = session.link().channel(cxl::Direction::kDeviceToCpu);
  std::printf("\nfinal training loss:    %.4f\n", loss);
  std::printf("update pushes:          %llu (demand fetches: %llu)\n",
              static_cast<unsigned long long>(s.update_pushes),
              static_cast<unsigned long long>(s.demand_fetches));
  std::printf("DBA-trimmed lines:      %llu\n",
              static_cast<unsigned long long>(s.dba_trimmed_lines));
  std::printf("payload CPU->device:    %.2f MiB\n",
              down.stats().payload_bytes / (1024.0 * 1024.0));
  std::printf("payload device->CPU:    %.2f MiB\n",
              up.stats().payload_bytes / (1024.0 * 1024.0));
  std::printf("simulated link time:    %.3f ms\n", session.now() * 1e3);
  std::puts("\nDone: the model trained through the CXL coherent domain with "
            "DBA active; no demand fetches, no invalidations.");
  return 0;
}
