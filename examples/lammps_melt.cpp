// The Section VII generality study as a runnable example: a real 3-D
// Lennard-Jones melt whose force kernel is "offloaded", with the
// CPU<->accelerator exchange riding the TECO interconnect models.
//
// Usage: ./lammps_melt [fcc_cells] [steps]   (default 6 cells = 864 atoms,
// 200 steps)
#include <cstdio>
#include <cstdlib>

#include "core/teco.hpp"

int main(int argc, char** argv) {
  using namespace teco;
  md::LjConfig cfg;
  cfg.fcc_cells = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                           : 6u;
  const std::size_t steps =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 200;

  md::LjSystem sys(cfg);
  std::printf("LJ melt: %zu atoms, box %.3f sigma, rho %.4f, T* %.2f, "
              "dt %.3f\n\n", sys.n(), sys.box_length(), cfg.density,
              cfg.temperature, cfg.dt);

  std::printf("%8s %12s %12s %12s %10s\n", "step", "E_kin", "E_pot",
              "E_total", "T*");
  auto prev_pos = sys.positions_f32();
  for (std::size_t s = 0; s <= steps; ++s) {
    if (s % (steps / 10) == 0) {
      std::printf("%8zu %12.3f %12.3f %12.3f %10.4f\n", s,
                  sys.kinetic_energy(), sys.potential_energy(),
                  sys.total_energy(), sys.instantaneous_temperature());
    }
    if (s < steps) sys.step();
  }

  const auto pos_stats = dl::compare_arrays(prev_pos, sys.positions_f32());
  std::printf("\nPosition bytes changed over the run: %.1f%% of floats in "
              "low-2-bytes only\n", 100 * pos_stats.frac_low2_covered());

  const auto r = md::md_generality_report(md::MdWorkload{},
                                          offload::default_calibration());
  std::printf("\nOffload timeline at 4M atoms (per MD step):\n");
  std::printf("  explicit copies:  %.2f ms (comm %.1f%%)\n",
              r.baseline.total() * 1e3, 100 * r.baseline.comm_fraction());
  std::printf("  TECO-CXL:         %.2f ms\n", r.cxl.total() * 1e3);
  std::printf("  TECO-Reduction:   %.2f ms\n", r.reduction.total() * 1e3);
  std::printf("  improvement %.1f%% (CXL %.0f%% / DBA %.0f%%), volume "
              "-%.1f%%\n", 100 * r.improvement, 100 * r.cxl_contribution,
              100 * r.dba_contribution, 100 * r.volume_reduction);
  return 0;
}
