// Happens-before trace lint (scripts/lint.sh, CI mc-exhaustive job).
//
// Runs a small BERT-style fine-tuning loop under `check = hb` and asks the
// vector-clock analyzer (src/mc/hb_analyzer.hpp) whether the recorded
// schedule is race-free. Two modes:
//
//   hb_lint            the disciplined Listing-1 loop: every cross-agent
//                      access pair is ordered by a CXLFENCE. Expects a
//                      clean report; exits 0 iff no race is found.
//   hb_lint --planted  the device reads the parameters after the
//                      optimizer's writes but *before* the optimizer
//                      fence — the classic premature-consume bug TECO's
//                      fences exist to prevent. Expects the analyzer to
//                      flag every parameter line; exits 0 iff it does.
//
// Either way an unexpected outcome exits 1, which is what makes this a
// lint: wiring it into CI pins both the analyzer's soundness on a healthy
// schedule and its sensitivity to the canonical unfenced access.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/session.hpp"
#include "mc/hb_analyzer.hpp"

int main(int argc, char** argv) {
  using namespace teco;
  const bool planted =
      argc > 1 && std::strcmp(argv[1], "--planted") == 0;

  core::SessionConfig cfg;
  cfg.check_hb = true;    // check = hb: strict invariants + HB recording.
  cfg.act_aft_steps = 1;  // DBA activates after the first step.

  core::Session s(cfg);
  constexpr std::size_t kFloats = 64;  // Four cache lines per region.
  const std::vector<float> vals(kFloats, 1.0f);
  const mem::Addr params = s.allocate_parameters("params", kFloats * 4);
  const mem::Addr grads = s.allocate_gradients("grads", kFloats * 4);
  s.seed_cpu_memory(params, vals);
  s.seed_device_memory(grads, vals);

  for (std::size_t step = 0; step < 3; ++step) {
    (void)s.device_read_parameters(params, kFloats);  // Forward pass.
    s.device_write_gradients(grads, vals);            // Backward pass.
    s.backward_complete();                            // CXLFENCE().
    s.check_activation(step);
    (void)s.cpu_read_gradients(grads, kFloats);
    s.cpu_write_parameters(params, vals);             // optimizer.step()
    if (planted && step == 2) {
      // Premature consume: the CPU's FlushData pushes are still in
      // flight and no fence orders the device's loads after them.
      (void)s.device_read_parameters(params, kFloats);
    }
    s.optimizer_step_complete();                      // CXLFENCE() + flush.
  }

  const mc::HbReport report = s.analyze_hb();
  std::printf("hb_lint (%s): %s\n", planted ? "planted" : "clean",
              report.to_string().c_str());

  if (planted) {
    // One race per parameter line, device read against CPU write.
    const bool caught = report.races_total == 4;
    if (!caught) {
      std::fprintf(stderr,
                   "FAIL: expected the planted pre-fence read to produce 4 "
                   "races, got %llu\n",
                   static_cast<unsigned long long>(report.races_total));
    }
    return caught ? 0 : 1;
  }
  if (!report.clean()) {
    std::fputs("FAIL: the fenced training loop must be race-free\n", stderr);
    return 1;
  }
  return 0;
}
