// A microscope on the coherence protocol: drive a few parameter updates
// through the home agent under both protocols and print the message flows
// (the Fig. 4/5 transitions), plus a bit-level DBA merge demonstration.
#include <cstdio>
#include <cstring>

#include "core/teco.hpp"

namespace {

void run_protocol(teco::coherence::Protocol proto) {
  using namespace teco;
  std::printf("=== %s protocol ===\n",
              proto == coherence::Protocol::kUpdate ? "Update (TECO)"
                                                    : "Invalidation (stock)");
  core::SessionConfig cfg;
  cfg.protocol = proto;
  cfg.dba_enabled = false;
  cfg.enable_trace = true;
  core::Session s(cfg);
  const auto params = s.allocate_parameters("w", 128);

  s.cpu_write_parameters(params, std::vector<float>{1.0f, 2.0f});
  s.optimizer_step_complete();
  s.device_read_parameters(params, 2);

  for (const auto& rec : s.trace().records()) {
    std::printf("  t=%-12.3e %-12s %s\n", rec.when, rec.event.c_str(),
                rec.detail.c_str());
  }
  const auto& st = s.stats();
  std::printf("  pushes=%llu invalidations=%llu demand_fetches=%llu\n\n",
              static_cast<unsigned long long>(st.update_pushes),
              static_cast<unsigned long long>(st.invalidations),
              static_cast<unsigned long long>(st.demand_fetches));
}

void dba_merge_demo() {
  using namespace teco;
  std::puts("=== DBA bit-level merge (dirty_bytes = 2) ===");
  const float old_val = 0.123456f;
  float new_small = old_val, new_big = 2.0f * old_val;
  std::uint32_t bits;
  std::memcpy(&bits, &new_small, 4);
  bits += 513;  // Low-two-byte mantissa drift.
  std::memcpy(&new_small, &bits, 4);

  const float spliced_small = dba::splice_f32(old_val, new_small, 2);
  const float spliced_big = dba::splice_f32(old_val, new_big, 2);
  std::printf("  low-byte update : master %.9f -> device %.9f (exact: %s)\n",
              new_small, spliced_small,
              spliced_small == new_small ? "yes" : "no");
  std::printf("  exponent update : master %.9f -> device %.9f (exact: %s)\n",
              new_big, spliced_big, spliced_big == new_big ? "yes" : "no");
  std::puts("  -> DBA transfers fine-tuning-scale updates losslessly and "
            "approximates rare exponent moves;\n     activation after "
            "act_aft_steps keeps those rare during the steady phase.\n");
}

}  // namespace

int main() {
  run_protocol(teco::coherence::Protocol::kUpdate);
  run_protocol(teco::coherence::Protocol::kInvalidation);
  dba_merge_demo();
  return 0;
}
