// Tuning act_aft_steps with Bayesian optimization (Section V-A).
//
// Each BO evaluation runs REAL training with the candidate activation step
// and scores it as speedup minus a penalty for exceeding the quality
// budget. Usage: ./autotune_act_steps [steps] [tolerance]
#include <cstdio>
#include <cstdlib>

#include "core/autotune.hpp"

int main(int argc, char** argv) {
  using namespace teco;
  const std::size_t steps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 800;
  const double tol = argc > 2 ? std::atof(argv[2]) : 0.02;

  const auto task = dl::make_regression_task(61);
  core::AutotuneConfig cfg;
  cfg.train.model = dl::default_model_for(task, 6);
  cfg.train.steps = steps;
  cfg.train.batch_size = 16;
  cfg.perf_model = dl::gpt2();
  cfg.metric_tolerance = tol;
  cfg.bo.init_samples = 4;
  cfg.bo.iterations = 6;

  std::printf("Tuning act_aft_steps over [0, %zu], quality budget "
              "|delta| <= %.3f ...\n\n", steps, tol);
  const auto res = core::tune_act_aft_steps(task, cfg);

  std::printf("evaluations:        %zu (each = one real training run)\n",
              res.evaluations);
  std::printf("best act_aft_steps: %zu\n", res.best_act_aft_steps);
  std::printf("speedup at best:    %.3fx over ZeRO-Offload\n",
              res.speedup_at_best);
  std::printf("metric delta:       %.4f (budget %.3f)\n",
              res.metric_delta_at_best, tol);
  std::puts("\nThe paper fixes act_aft_steps = 500 for its workloads; the "
            "tuner finds the same knee automatically for new models.");
  return 0;
}
