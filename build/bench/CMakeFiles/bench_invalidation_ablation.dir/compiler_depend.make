# Empty compiler generated dependencies file for bench_invalidation_ablation.
# This may be replaced when dependencies are built.
