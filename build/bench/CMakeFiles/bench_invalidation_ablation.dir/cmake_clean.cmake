file(REMOVE_RECURSE
  "CMakeFiles/bench_invalidation_ablation.dir/bench_invalidation_ablation.cpp.o"
  "CMakeFiles/bench_invalidation_ablation.dir/bench_invalidation_ablation.cpp.o.d"
  "bench_invalidation_ablation"
  "bench_invalidation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invalidation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
