# Empty compiler generated dependencies file for bench_micro_link.
# This may be replaced when dependencies are built.
