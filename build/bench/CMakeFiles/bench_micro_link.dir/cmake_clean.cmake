file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_link.dir/bench_micro_link.cpp.o"
  "CMakeFiles/bench_micro_link.dir/bench_micro_link.cpp.o.d"
  "bench_micro_link"
  "bench_micro_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
