# Empty compiler generated dependencies file for bench_fig2_value_changes.
# This may be replaced when dependencies are built.
