file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_value_changes.dir/bench_fig2_value_changes.cpp.o"
  "CMakeFiles/bench_fig2_value_changes.dir/bench_fig2_value_changes.cpp.o.d"
  "bench_fig2_value_changes"
  "bench_fig2_value_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_value_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
