# Empty compiler generated dependencies file for bench_volume_dba.
# This may be replaced when dependencies are built.
