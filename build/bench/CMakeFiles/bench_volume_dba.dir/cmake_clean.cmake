file(REMOVE_RECURSE
  "CMakeFiles/bench_volume_dba.dir/bench_volume_dba.cpp.o"
  "CMakeFiles/bench_volume_dba.dir/bench_volume_dba.cpp.o.d"
  "bench_volume_dba"
  "bench_volume_dba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_dba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
