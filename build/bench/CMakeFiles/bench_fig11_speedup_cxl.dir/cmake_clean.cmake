file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_speedup_cxl.dir/bench_fig11_speedup_cxl.cpp.o"
  "CMakeFiles/bench_fig11_speedup_cxl.dir/bench_fig11_speedup_cxl.cpp.o.d"
  "bench_fig11_speedup_cxl"
  "bench_fig11_speedup_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_speedup_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
