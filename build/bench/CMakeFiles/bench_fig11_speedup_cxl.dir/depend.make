# Empty dependencies file for bench_fig11_speedup_cxl.
# This may be replaced when dependencies are built.
