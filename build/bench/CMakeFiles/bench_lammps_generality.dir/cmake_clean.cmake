file(REMOVE_RECURSE
  "CMakeFiles/bench_lammps_generality.dir/bench_lammps_generality.cpp.o"
  "CMakeFiles/bench_lammps_generality.dir/bench_lammps_generality.cpp.o.d"
  "bench_lammps_generality"
  "bench_lammps_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lammps_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
