# Empty dependencies file for bench_lammps_generality.
# This may be replaced when dependencies are built.
