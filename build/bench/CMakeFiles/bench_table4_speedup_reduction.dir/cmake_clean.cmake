file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_speedup_reduction.dir/bench_table4_speedup_reduction.cpp.o"
  "CMakeFiles/bench_table4_speedup_reduction.dir/bench_table4_speedup_reduction.cpp.o.d"
  "bench_table4_speedup_reduction"
  "bench_table4_speedup_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_speedup_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
