# Empty compiler generated dependencies file for bench_fig13_activation.
# This may be replaced when dependencies are built.
