file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_zeroquant.dir/bench_table7_zeroquant.cpp.o"
  "CMakeFiles/bench_table7_zeroquant.dir/bench_table7_zeroquant.cpp.o.d"
  "bench_table7_zeroquant"
  "bench_table7_zeroquant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_zeroquant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
