# Empty dependencies file for bench_table7_zeroquant.
# This may be replaced when dependencies are built.
