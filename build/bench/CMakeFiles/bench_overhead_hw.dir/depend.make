# Empty dependencies file for bench_overhead_hw.
# This may be replaced when dependencies are built.
