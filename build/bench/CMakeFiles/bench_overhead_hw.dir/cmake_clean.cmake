file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_hw.dir/bench_overhead_hw.cpp.o"
  "CMakeFiles/bench_overhead_hw.dir/bench_overhead_hw.cpp.o.d"
  "bench_overhead_hw"
  "bench_overhead_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
