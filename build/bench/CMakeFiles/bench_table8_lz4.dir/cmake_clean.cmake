file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_lz4.dir/bench_table8_lz4.cpp.o"
  "CMakeFiles/bench_table8_lz4.dir/bench_table8_lz4.cpp.o.d"
  "bench_table8_lz4"
  "bench_table8_lz4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_lz4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
