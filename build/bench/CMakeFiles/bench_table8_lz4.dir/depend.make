# Empty dependencies file for bench_table8_lz4.
# This may be replaced when dependencies are built.
