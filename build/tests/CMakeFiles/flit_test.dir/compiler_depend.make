# Empty compiler generated dependencies file for flit_test.
# This may be replaced when dependencies are built.
