file(REMOVE_RECURSE
  "CMakeFiles/flit_test.dir/flit_test.cpp.o"
  "CMakeFiles/flit_test.dir/flit_test.cpp.o.d"
  "flit_test"
  "flit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
