# Empty compiler generated dependencies file for bayesopt_test.
# This may be replaced when dependencies are built.
