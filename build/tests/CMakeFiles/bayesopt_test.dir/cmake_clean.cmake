file(REMOVE_RECURSE
  "CMakeFiles/bayesopt_test.dir/bayesopt_test.cpp.o"
  "CMakeFiles/bayesopt_test.dir/bayesopt_test.cpp.o.d"
  "bayesopt_test"
  "bayesopt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayesopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
