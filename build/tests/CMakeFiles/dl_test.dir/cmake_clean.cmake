file(REMOVE_RECURSE
  "CMakeFiles/dl_test.dir/dl_test.cpp.o"
  "CMakeFiles/dl_test.dir/dl_test.cpp.o.d"
  "dl_test"
  "dl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
