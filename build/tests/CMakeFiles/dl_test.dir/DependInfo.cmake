
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dl_test.cpp" "tests/CMakeFiles/dl_test.dir/dl_test.cpp.o" "gcc" "tests/CMakeFiles/dl_test.dir/dl_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/teco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/teco_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/teco_md.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/teco_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/teco_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/teco_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/teco_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
