file(REMOVE_RECURSE
  "CMakeFiles/channel_property_test.dir/channel_property_test.cpp.o"
  "CMakeFiles/channel_property_test.dir/channel_property_test.cpp.o.d"
  "channel_property_test"
  "channel_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
