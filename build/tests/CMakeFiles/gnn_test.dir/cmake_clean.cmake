file(REMOVE_RECURSE
  "CMakeFiles/gnn_test.dir/gnn_test.cpp.o"
  "CMakeFiles/gnn_test.dir/gnn_test.cpp.o.d"
  "gnn_test"
  "gnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
