file(REMOVE_RECURSE
  "CMakeFiles/event_channel_test.dir/event_channel_test.cpp.o"
  "CMakeFiles/event_channel_test.dir/event_channel_test.cpp.o.d"
  "event_channel_test"
  "event_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
