# Empty compiler generated dependencies file for event_channel_test.
# This may be replaced when dependencies are built.
