file(REMOVE_RECURSE
  "CMakeFiles/dba_test.dir/dba_test.cpp.o"
  "CMakeFiles/dba_test.dir/dba_test.cpp.o.d"
  "dba_test"
  "dba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
