# Empty compiler generated dependencies file for dba_test.
# This may be replaced when dependencies are built.
