file(REMOVE_RECURSE
  "CMakeFiles/offload_property_test.dir/offload_property_test.cpp.o"
  "CMakeFiles/offload_property_test.dir/offload_property_test.cpp.o.d"
  "offload_property_test"
  "offload_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
