file(REMOVE_RECURSE
  "libteco_dl.a"
)
