
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/adam.cpp" "src/dl/CMakeFiles/teco_dl.dir/adam.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/adam.cpp.o.d"
  "/root/repo/src/dl/attention.cpp" "src/dl/CMakeFiles/teco_dl.dir/attention.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/attention.cpp.o.d"
  "/root/repo/src/dl/byte_stats.cpp" "src/dl/CMakeFiles/teco_dl.dir/byte_stats.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/byte_stats.cpp.o.d"
  "/root/repo/src/dl/dba_training.cpp" "src/dl/CMakeFiles/teco_dl.dir/dba_training.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/dba_training.cpp.o.d"
  "/root/repo/src/dl/fp16.cpp" "src/dl/CMakeFiles/teco_dl.dir/fp16.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/fp16.cpp.o.d"
  "/root/repo/src/dl/gnn.cpp" "src/dl/CMakeFiles/teco_dl.dir/gnn.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/gnn.cpp.o.d"
  "/root/repo/src/dl/mlp.cpp" "src/dl/CMakeFiles/teco_dl.dir/mlp.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/mlp.cpp.o.d"
  "/root/repo/src/dl/model_zoo.cpp" "src/dl/CMakeFiles/teco_dl.dir/model_zoo.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/model_zoo.cpp.o.d"
  "/root/repo/src/dl/synthetic_data.cpp" "src/dl/CMakeFiles/teco_dl.dir/synthetic_data.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/synthetic_data.cpp.o.d"
  "/root/repo/src/dl/tensor.cpp" "src/dl/CMakeFiles/teco_dl.dir/tensor.cpp.o" "gcc" "src/dl/CMakeFiles/teco_dl.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
