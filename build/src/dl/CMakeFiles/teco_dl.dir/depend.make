# Empty dependencies file for teco_dl.
# This may be replaced when dependencies are built.
