file(REMOVE_RECURSE
  "CMakeFiles/teco_dl.dir/adam.cpp.o"
  "CMakeFiles/teco_dl.dir/adam.cpp.o.d"
  "CMakeFiles/teco_dl.dir/attention.cpp.o"
  "CMakeFiles/teco_dl.dir/attention.cpp.o.d"
  "CMakeFiles/teco_dl.dir/byte_stats.cpp.o"
  "CMakeFiles/teco_dl.dir/byte_stats.cpp.o.d"
  "CMakeFiles/teco_dl.dir/dba_training.cpp.o"
  "CMakeFiles/teco_dl.dir/dba_training.cpp.o.d"
  "CMakeFiles/teco_dl.dir/fp16.cpp.o"
  "CMakeFiles/teco_dl.dir/fp16.cpp.o.d"
  "CMakeFiles/teco_dl.dir/gnn.cpp.o"
  "CMakeFiles/teco_dl.dir/gnn.cpp.o.d"
  "CMakeFiles/teco_dl.dir/mlp.cpp.o"
  "CMakeFiles/teco_dl.dir/mlp.cpp.o.d"
  "CMakeFiles/teco_dl.dir/model_zoo.cpp.o"
  "CMakeFiles/teco_dl.dir/model_zoo.cpp.o.d"
  "CMakeFiles/teco_dl.dir/synthetic_data.cpp.o"
  "CMakeFiles/teco_dl.dir/synthetic_data.cpp.o.d"
  "CMakeFiles/teco_dl.dir/tensor.cpp.o"
  "CMakeFiles/teco_dl.dir/tensor.cpp.o.d"
  "libteco_dl.a"
  "libteco_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
