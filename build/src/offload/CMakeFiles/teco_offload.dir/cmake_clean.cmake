file(REMOVE_RECURSE
  "CMakeFiles/teco_offload.dir/calibration.cpp.o"
  "CMakeFiles/teco_offload.dir/calibration.cpp.o.d"
  "CMakeFiles/teco_offload.dir/experiments.cpp.o"
  "CMakeFiles/teco_offload.dir/experiments.cpp.o.d"
  "CMakeFiles/teco_offload.dir/multi_device.cpp.o"
  "CMakeFiles/teco_offload.dir/multi_device.cpp.o.d"
  "CMakeFiles/teco_offload.dir/pipeline_sim.cpp.o"
  "CMakeFiles/teco_offload.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/teco_offload.dir/runtime.cpp.o"
  "CMakeFiles/teco_offload.dir/runtime.cpp.o.d"
  "CMakeFiles/teco_offload.dir/step_model.cpp.o"
  "CMakeFiles/teco_offload.dir/step_model.cpp.o.d"
  "CMakeFiles/teco_offload.dir/trace_replay.cpp.o"
  "CMakeFiles/teco_offload.dir/trace_replay.cpp.o.d"
  "libteco_offload.a"
  "libteco_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
