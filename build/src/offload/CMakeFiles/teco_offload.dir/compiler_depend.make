# Empty compiler generated dependencies file for teco_offload.
# This may be replaced when dependencies are built.
