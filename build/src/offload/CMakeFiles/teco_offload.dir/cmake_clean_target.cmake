file(REMOVE_RECURSE
  "libteco_offload.a"
)
