
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offload/calibration.cpp" "src/offload/CMakeFiles/teco_offload.dir/calibration.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/calibration.cpp.o.d"
  "/root/repo/src/offload/experiments.cpp" "src/offload/CMakeFiles/teco_offload.dir/experiments.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/experiments.cpp.o.d"
  "/root/repo/src/offload/multi_device.cpp" "src/offload/CMakeFiles/teco_offload.dir/multi_device.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/multi_device.cpp.o.d"
  "/root/repo/src/offload/pipeline_sim.cpp" "src/offload/CMakeFiles/teco_offload.dir/pipeline_sim.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/offload/runtime.cpp" "src/offload/CMakeFiles/teco_offload.dir/runtime.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/runtime.cpp.o.d"
  "/root/repo/src/offload/step_model.cpp" "src/offload/CMakeFiles/teco_offload.dir/step_model.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/step_model.cpp.o.d"
  "/root/repo/src/offload/trace_replay.cpp" "src/offload/CMakeFiles/teco_offload.dir/trace_replay.cpp.o" "gcc" "src/offload/CMakeFiles/teco_offload.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/teco_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/teco_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/teco_dl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
