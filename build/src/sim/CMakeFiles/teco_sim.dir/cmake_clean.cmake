file(REMOVE_RECURSE
  "CMakeFiles/teco_sim.dir/bayesopt.cpp.o"
  "CMakeFiles/teco_sim.dir/bayesopt.cpp.o.d"
  "CMakeFiles/teco_sim.dir/event_queue.cpp.o"
  "CMakeFiles/teco_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/teco_sim.dir/stats.cpp.o"
  "CMakeFiles/teco_sim.dir/stats.cpp.o.d"
  "CMakeFiles/teco_sim.dir/trace.cpp.o"
  "CMakeFiles/teco_sim.dir/trace.cpp.o.d"
  "libteco_sim.a"
  "libteco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
