# Empty dependencies file for teco_sim.
# This may be replaced when dependencies are built.
