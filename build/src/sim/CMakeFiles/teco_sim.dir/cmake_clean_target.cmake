file(REMOVE_RECURSE
  "libteco_sim.a"
)
