file(REMOVE_RECURSE
  "CMakeFiles/teco_coherence.dir/giant_cache.cpp.o"
  "CMakeFiles/teco_coherence.dir/giant_cache.cpp.o.d"
  "CMakeFiles/teco_coherence.dir/home_agent.cpp.o"
  "CMakeFiles/teco_coherence.dir/home_agent.cpp.o.d"
  "CMakeFiles/teco_coherence.dir/snoop_filter.cpp.o"
  "CMakeFiles/teco_coherence.dir/snoop_filter.cpp.o.d"
  "libteco_coherence.a"
  "libteco_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
