# Empty compiler generated dependencies file for teco_coherence.
# This may be replaced when dependencies are built.
