file(REMOVE_RECURSE
  "libteco_coherence.a"
)
