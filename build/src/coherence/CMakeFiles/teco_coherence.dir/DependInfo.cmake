
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/giant_cache.cpp" "src/coherence/CMakeFiles/teco_coherence.dir/giant_cache.cpp.o" "gcc" "src/coherence/CMakeFiles/teco_coherence.dir/giant_cache.cpp.o.d"
  "/root/repo/src/coherence/home_agent.cpp" "src/coherence/CMakeFiles/teco_coherence.dir/home_agent.cpp.o" "gcc" "src/coherence/CMakeFiles/teco_coherence.dir/home_agent.cpp.o.d"
  "/root/repo/src/coherence/snoop_filter.cpp" "src/coherence/CMakeFiles/teco_coherence.dir/snoop_filter.cpp.o" "gcc" "src/coherence/CMakeFiles/teco_coherence.dir/snoop_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/teco_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
