file(REMOVE_RECURSE
  "libteco_md.a"
)
