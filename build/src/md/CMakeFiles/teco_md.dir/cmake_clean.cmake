file(REMOVE_RECURSE
  "CMakeFiles/teco_md.dir/lj_system.cpp.o"
  "CMakeFiles/teco_md.dir/lj_system.cpp.o.d"
  "CMakeFiles/teco_md.dir/offload_md.cpp.o"
  "CMakeFiles/teco_md.dir/offload_md.cpp.o.d"
  "libteco_md.a"
  "libteco_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
