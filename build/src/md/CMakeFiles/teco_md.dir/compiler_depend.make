# Empty compiler generated dependencies file for teco_md.
# This may be replaced when dependencies are built.
