
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/lj_system.cpp" "src/md/CMakeFiles/teco_md.dir/lj_system.cpp.o" "gcc" "src/md/CMakeFiles/teco_md.dir/lj_system.cpp.o.d"
  "/root/repo/src/md/offload_md.cpp" "src/md/CMakeFiles/teco_md.dir/offload_md.cpp.o" "gcc" "src/md/CMakeFiles/teco_md.dir/offload_md.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/teco_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/teco_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/teco_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/teco_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
