file(REMOVE_RECURSE
  "CMakeFiles/teco_dba.dir/aggregator.cpp.o"
  "CMakeFiles/teco_dba.dir/aggregator.cpp.o.d"
  "CMakeFiles/teco_dba.dir/disaggregator.cpp.o"
  "CMakeFiles/teco_dba.dir/disaggregator.cpp.o.d"
  "libteco_dba.a"
  "libteco_dba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_dba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
