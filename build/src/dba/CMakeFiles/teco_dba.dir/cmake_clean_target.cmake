file(REMOVE_RECURSE
  "libteco_dba.a"
)
