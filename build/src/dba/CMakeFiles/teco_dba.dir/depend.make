# Empty dependencies file for teco_dba.
# This may be replaced when dependencies are built.
