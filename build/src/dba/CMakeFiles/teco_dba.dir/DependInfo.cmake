
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dba/aggregator.cpp" "src/dba/CMakeFiles/teco_dba.dir/aggregator.cpp.o" "gcc" "src/dba/CMakeFiles/teco_dba.dir/aggregator.cpp.o.d"
  "/root/repo/src/dba/disaggregator.cpp" "src/dba/CMakeFiles/teco_dba.dir/disaggregator.cpp.o" "gcc" "src/dba/CMakeFiles/teco_dba.dir/disaggregator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
