
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/lz4.cpp" "src/compress/CMakeFiles/teco_compress.dir/lz4.cpp.o" "gcc" "src/compress/CMakeFiles/teco_compress.dir/lz4.cpp.o.d"
  "/root/repo/src/compress/param_corpus.cpp" "src/compress/CMakeFiles/teco_compress.dir/param_corpus.cpp.o" "gcc" "src/compress/CMakeFiles/teco_compress.dir/param_corpus.cpp.o.d"
  "/root/repo/src/compress/quant_model.cpp" "src/compress/CMakeFiles/teco_compress.dir/quant_model.cpp.o" "gcc" "src/compress/CMakeFiles/teco_compress.dir/quant_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/teco_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/teco_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/teco_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/dba/CMakeFiles/teco_dba.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/teco_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
