file(REMOVE_RECURSE
  "CMakeFiles/teco_compress.dir/lz4.cpp.o"
  "CMakeFiles/teco_compress.dir/lz4.cpp.o.d"
  "CMakeFiles/teco_compress.dir/param_corpus.cpp.o"
  "CMakeFiles/teco_compress.dir/param_corpus.cpp.o.d"
  "CMakeFiles/teco_compress.dir/quant_model.cpp.o"
  "CMakeFiles/teco_compress.dir/quant_model.cpp.o.d"
  "libteco_compress.a"
  "libteco_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
