file(REMOVE_RECURSE
  "libteco_compress.a"
)
