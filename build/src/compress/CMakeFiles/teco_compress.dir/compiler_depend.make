# Empty compiler generated dependencies file for teco_compress.
# This may be replaced when dependencies are built.
