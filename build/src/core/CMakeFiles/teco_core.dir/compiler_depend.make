# Empty compiler generated dependencies file for teco_core.
# This may be replaced when dependencies are built.
