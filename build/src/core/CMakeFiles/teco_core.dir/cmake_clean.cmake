file(REMOVE_RECURSE
  "CMakeFiles/teco_core.dir/autotune.cpp.o"
  "CMakeFiles/teco_core.dir/autotune.cpp.o.d"
  "CMakeFiles/teco_core.dir/config.cpp.o"
  "CMakeFiles/teco_core.dir/config.cpp.o.d"
  "CMakeFiles/teco_core.dir/gantt.cpp.o"
  "CMakeFiles/teco_core.dir/gantt.cpp.o.d"
  "CMakeFiles/teco_core.dir/report.cpp.o"
  "CMakeFiles/teco_core.dir/report.cpp.o.d"
  "CMakeFiles/teco_core.dir/session.cpp.o"
  "CMakeFiles/teco_core.dir/session.cpp.o.d"
  "libteco_core.a"
  "libteco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
