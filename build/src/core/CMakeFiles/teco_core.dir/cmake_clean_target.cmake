file(REMOVE_RECURSE
  "libteco_core.a"
)
