
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cxl/channel.cpp" "src/cxl/CMakeFiles/teco_cxl.dir/channel.cpp.o" "gcc" "src/cxl/CMakeFiles/teco_cxl.dir/channel.cpp.o.d"
  "/root/repo/src/cxl/flit.cpp" "src/cxl/CMakeFiles/teco_cxl.dir/flit.cpp.o" "gcc" "src/cxl/CMakeFiles/teco_cxl.dir/flit.cpp.o.d"
  "/root/repo/src/cxl/link.cpp" "src/cxl/CMakeFiles/teco_cxl.dir/link.cpp.o" "gcc" "src/cxl/CMakeFiles/teco_cxl.dir/link.cpp.o.d"
  "/root/repo/src/cxl/reliability.cpp" "src/cxl/CMakeFiles/teco_cxl.dir/reliability.cpp.o" "gcc" "src/cxl/CMakeFiles/teco_cxl.dir/reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/teco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/teco_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
