file(REMOVE_RECURSE
  "libteco_cxl.a"
)
