# Empty compiler generated dependencies file for teco_cxl.
# This may be replaced when dependencies are built.
