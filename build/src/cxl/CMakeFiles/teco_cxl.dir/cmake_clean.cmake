file(REMOVE_RECURSE
  "CMakeFiles/teco_cxl.dir/channel.cpp.o"
  "CMakeFiles/teco_cxl.dir/channel.cpp.o.d"
  "CMakeFiles/teco_cxl.dir/flit.cpp.o"
  "CMakeFiles/teco_cxl.dir/flit.cpp.o.d"
  "CMakeFiles/teco_cxl.dir/link.cpp.o"
  "CMakeFiles/teco_cxl.dir/link.cpp.o.d"
  "CMakeFiles/teco_cxl.dir/reliability.cpp.o"
  "CMakeFiles/teco_cxl.dir/reliability.cpp.o.d"
  "libteco_cxl.a"
  "libteco_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
