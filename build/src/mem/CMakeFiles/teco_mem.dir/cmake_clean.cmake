file(REMOVE_RECURSE
  "CMakeFiles/teco_mem.dir/cache.cpp.o"
  "CMakeFiles/teco_mem.dir/cache.cpp.o.d"
  "CMakeFiles/teco_mem.dir/dram.cpp.o"
  "CMakeFiles/teco_mem.dir/dram.cpp.o.d"
  "CMakeFiles/teco_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/teco_mem.dir/hierarchy.cpp.o.d"
  "libteco_mem.a"
  "libteco_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teco_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
