# Empty compiler generated dependencies file for teco_mem.
# This may be replaced when dependencies are built.
