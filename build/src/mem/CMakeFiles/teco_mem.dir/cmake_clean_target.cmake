file(REMOVE_RECURSE
  "libteco_mem.a"
)
