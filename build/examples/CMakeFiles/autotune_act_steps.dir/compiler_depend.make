# Empty compiler generated dependencies file for autotune_act_steps.
# This may be replaced when dependencies are built.
