file(REMOVE_RECURSE
  "CMakeFiles/autotune_act_steps.dir/autotune_act_steps.cpp.o"
  "CMakeFiles/autotune_act_steps.dir/autotune_act_steps.cpp.o.d"
  "autotune_act_steps"
  "autotune_act_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_act_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
