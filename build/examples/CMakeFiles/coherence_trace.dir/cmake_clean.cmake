file(REMOVE_RECURSE
  "CMakeFiles/coherence_trace.dir/coherence_trace.cpp.o"
  "CMakeFiles/coherence_trace.dir/coherence_trace.cpp.o.d"
  "coherence_trace"
  "coherence_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
