# Empty compiler generated dependencies file for coherence_trace.
# This may be replaced when dependencies are built.
