# Empty compiler generated dependencies file for lammps_melt.
# This may be replaced when dependencies are built.
