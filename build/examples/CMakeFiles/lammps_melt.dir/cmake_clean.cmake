file(REMOVE_RECURSE
  "CMakeFiles/lammps_melt.dir/lammps_melt.cpp.o"
  "CMakeFiles/lammps_melt.dir/lammps_melt.cpp.o.d"
  "lammps_melt"
  "lammps_melt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lammps_melt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
